//! The match *service*: a multi-tenant [`EngineHost`] that loads one or
//! more persisted `PipelineState`s + trained matchers from disk — one
//! named tenant per domain — applies `UpsertBatch` streams from files
//! and stdin, and answers group lookups over the versioned line protocol
//! (`docs/PROTOCOL.md`) with per-tenant latency traces.
//!
//! Two subcommands:
//!
//! ```text
//! serve bootstrap [--domain companies|securities|products] [--shards N]
//!                 [--deltas K] [--model model.json]
//!                 [--state serve-state.json] [--deltas-out serve-deltas]
//! ```
//! generates the domain's benchmark records (`GRALMATCH_SCALE`),
//! bootstraps an engine over the leading 70 % of them, persists its
//! state + scorer-fingerprint sidecar, and writes `K` delta-batch files
//! over the remainder — **with delete/re-insert churn woven through
//! them**, so replaying the deltas exercises component re-cleaning, not
//! just growth.
//!
//! ```text
//! serve run [--tenant NAME:DOMAIN:STATE[:MODEL]]…
//!           [--state serve-state.json] [--model model.json]
//!           [--durable DIR]
//!           [--apply [TENANT:]delta-1.json]… [--save-state [TENANT:]out.json]
//!           [--listen ADDR [--readers N] [--client-script FILE]]
//! ```
//! resumes every `--tenant` engine from its state file (scoring through
//! its own loaded model, or the heuristic matcher when none is given) —
//! with no `--tenant`, a one-entry `securities` host from `--state` —
//! applies each `--apply` batch with a latency trace, then serves the
//! line protocol from stdin until EOF or over TCP with `--listen` (see
//! `gralmatch_bench::net`; `--client-script` streams a request file
//! through a real TCP client against the bound listener and shuts the
//! server down after). Malformed lines answer with a coded
//! `error: <code>: <message>` line and the service keeps running.
//!
//! `--durable DIR` arms crash-safe binary persistence on every tenant:
//! each keeps a checksummed binary snapshot at `DIR/<tenant>.bin` plus an
//! append-only WAL at `DIR/<tenant>.bin.wal` (`docs/STATE.md`), and a
//! restart recovers from snapshot + WAL tail instead of re-parsing the
//! JSON state. A state file that is itself a binary snapshot (magic
//! `GMSN`) is detected and recovered from directly, with or without
//! `--durable`.

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::{prepare_synthetic, Scale};
use gralmatch_bench::net::serve_tcp;
use gralmatch_bench::serve::{
    bootstrap_tenant, fingerprint_path, latency_line, load_batch_json, resume_tenant_named,
    resume_tenant_named_binary, save_batch, HostSession, ServeDomain,
};
use gralmatch_core::{
    churn_window, model_fingerprint, persist, CheckpointPolicy, EngineHost, RecoveryReport,
    ShardPlan, TenantEngine, UpsertBatch,
};
use gralmatch_datagen::{generate_wdc, WdcConfig};
use gralmatch_lm::SavedModel;
use gralmatch_records::{CompanyRecord, ProductRecord, SecurityRecord};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;

fn load_model(path: Option<&str>) -> Option<SavedModel> {
    path.map(|path| {
        SavedModel::load(Path::new(path)).unwrap_or_else(|e| panic!("loading {path}: {e:?}"))
    })
}

/// WDC product records scaled like the synthetic financial benchmark, so
/// `GRALMATCH_SCALE` governs every domain's serve footprint.
fn scaled_products(scale: Scale) -> Vec<ProductRecord> {
    let config = WdcConfig {
        num_entities: ((760.0 * scale.0) as usize).max(40),
        ..WdcConfig::default()
    };
    generate_wdc(&config).products.records().to_vec()
}

fn bootstrap(cli: &BenchCli) {
    let scale = Scale::from_env();
    match cli.value("domain").unwrap_or("securities") {
        "securities" => bootstrap_domain::<SecurityRecord>(
            cli,
            scale,
            prepare_synthetic(scale).data.securities.records().to_vec(),
        ),
        "companies" => bootstrap_domain::<CompanyRecord>(
            cli,
            scale,
            prepare_synthetic(scale).data.companies.records().to_vec(),
        ),
        "products" => bootstrap_domain::<ProductRecord>(cli, scale, scaled_products(scale)),
        other => {
            eprintln!("unknown --domain {other:?} (expected companies | securities | products)");
            std::process::exit(2);
        }
    }
}

fn bootstrap_domain<R: ServeDomain>(cli: &BenchCli, scale: Scale, records: Vec<R>) {
    let shards = cli.shards_or(4);
    let deltas = cli.usize_value("deltas").unwrap_or(3);
    let state_path = cli.value("state").unwrap_or("serve-state.json").to_string();
    let deltas_dir = cli
        .value("deltas-out")
        .unwrap_or("serve-deltas")
        .to_string();
    eprintln!(
        "serve bootstrap: domain {} scale {} shards {shards} deltas {deltas} -> {state_path}, \
         {deltas_dir}/",
        R::DOMAIN,
        scale.0
    );

    let initial = records.len() * 7 / 10;
    let model = load_model(cli.value("model"));
    let fingerprint = model_fingerprint(R::DOMAIN, model.as_ref());
    let (tenant, outcome) =
        bootstrap_tenant::<R>(records[..initial].to_vec(), ShardPlan::new(shards), model)
            .expect("bootstrap succeeds");
    eprintln!("serve bootstrap: {}", latency_line(&outcome, 0.0));
    std::fs::write(&state_path, tenant.state_json()).expect("write state");
    // Record which scorer produced the standing predictions — `run`
    // refuses to reconcile this state under a different one.
    std::fs::write(fingerprint_path(&state_path), &fingerprint).expect("write scorer sidecar");

    // Delta files over the remainder, with churn: batch j deletes a small
    // slice of already-loaded records, batch j+1 re-inserts it — so a
    // replay exercises retraction and component re-cleaning.
    std::fs::create_dir_all(&deltas_dir).expect("create deltas dir");
    let remainder = &records[initial..];
    let chunk = remainder.len().div_ceil(deltas.max(1)).max(1);
    let mut pending: Vec<R> = Vec::new();
    for (j, slice) in remainder.chunks(chunk).take(deltas).enumerate() {
        let churn: Vec<R> = records[churn_window(initial, j, 5)]
            .iter()
            .filter(|record| !pending.iter().any(|p| p.id() == record.id()))
            .cloned()
            .collect();
        let mut batch = UpsertBatch::inserting(slice.to_vec());
        batch.inserts.append(&mut pending);
        batch.deletes = churn.iter().map(|record| record.id()).collect();
        pending = churn;
        let path = format!("{deltas_dir}/delta-{}.json", j + 1);
        save_batch(&path, &batch).expect("write delta batch");
        eprintln!(
            "serve bootstrap: wrote {path} (+{} inserts, -{} deletes)",
            batch.inserts.len(),
            batch.deletes.len()
        );
    }
    // A final restore batch keeps the delta set closed: applying every
    // file ends with the full population live.
    let mut delta_files = remainder.chunks(chunk).take(deltas).count();
    if !pending.is_empty() {
        let path = format!("{deltas_dir}/delta-{}.json", delta_files + 1);
        save_batch(&path, &UpsertBatch::inserting(pending)).expect("write restore batch");
        eprintln!("serve bootstrap: wrote {path} (churn restore)");
        delta_files += 1;
    }
    println!(
        "bootstrapped {state_path} ({} tenant, {initial} records live, {delta_files} delta \
         files — apply all of them to reach the full population)",
        R::DOMAIN
    );
}

/// Resume one tenant from its state file, enforcing the scorer sidecar.
/// With `durable_dir`, an existing checkpoint at `DIR/<name>.bin` wins
/// over the state file (the fast-restart path), and a tenant resumed
/// from JSON gets durability enabled there afterwards.
fn resume_one(
    name: &str,
    domain: &str,
    state_path: &str,
    model_path: Option<&str>,
    durable_dir: Option<&str>,
) -> Box<dyn TenantEngine> {
    let model = load_model(model_path);
    // Standing predictions were scored under the bootstrap scorer; mixing
    // in a different one would silently blend scoring regimes. The
    // sidecar is advisory (absent for hand-built states) but a recorded
    // mismatch is fatal.
    let fingerprint = model_fingerprint(domain, model.as_ref());
    let check_sidecar = |path: &str| {
        if let Ok(recorded) = std::fs::read_to_string(fingerprint_path(path)) {
            assert_eq!(
                recorded.trim(),
                fingerprint,
                "{path} was built with a different scorer — pass the matching model for \
                 tenant {name}"
            );
        }
    };
    let report_recovery = |path: &str, report: &RecoveryReport, seconds: f64| {
        eprintln!(
            "serve: tenant {name} ({domain}) recovered {path} in {seconds:.3}s (snapshot \
             epoch {}, {} WAL frame(s) replayed{}{})",
            report.snapshot_epoch,
            report.batches_replayed,
            if report.batches_skipped > 0 {
                format!(
                    ", {} already-checkpointed frame(s) skipped",
                    report.batches_skipped
                )
            } else {
                String::new()
            },
            if report.truncated_tail {
                ", torn tail truncated"
            } else {
                ""
            },
        );
    };
    let load_watch = gralmatch_util::Stopwatch::start();

    let durable_snapshot = durable_dir.map(|dir| format!("{dir}/{name}.bin"));
    let mut recovered_from_checkpoint = false;
    let mut tenant: Box<dyn TenantEngine> = match &durable_snapshot {
        // A checkpoint from a previous durable run wins over the state
        // file: O(snapshot + WAL tail) instead of a JSON re-parse.
        Some(path) if Path::new(path).exists() => {
            check_sidecar(path);
            let (tenant, report) =
                resume_tenant_named_binary(domain, path, model, CheckpointPolicy::default())
                    .unwrap_or_else(|e| panic!("recovering {path} as {domain}: {e:?}"));
            report_recovery(path, &report, load_watch.elapsed_secs());
            recovered_from_checkpoint = true;
            tenant
        }
        _ => {
            let bytes =
                std::fs::read(state_path).unwrap_or_else(|e| panic!("reading {state_path}: {e}"));
            check_sidecar(state_path);
            if persist::is_binary_state(&bytes) {
                let (tenant, report) = resume_tenant_named_binary(
                    domain,
                    state_path,
                    model,
                    CheckpointPolicy::default(),
                )
                .unwrap_or_else(|e| panic!("recovering {state_path} as {domain}: {e:?}"));
                report_recovery(state_path, &report, load_watch.elapsed_secs());
                tenant
            } else {
                let text = String::from_utf8(bytes).unwrap_or_else(|e| {
                    panic!(
                        "{state_path} is neither a binary snapshot nor \
                     UTF-8 JSON: {e}"
                    )
                });
                let tenant = resume_tenant_named(domain, &text, model)
                    .unwrap_or_else(|e| panic!("resuming {state_path} as {domain}: {e:?}"));
                let stats = tenant.stats();
                eprintln!(
                    "serve: tenant {name} ({domain}) resumed {state_path} in {:.3}s ({} live \
                     records, {} groups)",
                    load_watch.elapsed_secs(),
                    stats.num_live,
                    stats.num_groups
                );
                tenant
            }
        }
    };
    if let Some(path) = &durable_snapshot {
        if !recovered_from_checkpoint {
            if let Some(dir) = durable_dir {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| panic!("creating durable dir {dir}: {e}"));
            }
            tenant
                .enable_durability(Path::new(path), CheckpointPolicy::default())
                .unwrap_or_else(|e| panic!("enabling durability for tenant {name}: {e}"));
            eprintln!("serve: tenant {name} durable at {path} (WAL {path}.wal)");
        }
    }
    tenant
}

/// Split an `[TENANT:]path` flag value against the registered tenants.
fn tenant_path<'a>(session: &HostSession, value: &'a str) -> (String, &'a str) {
    match value.split_once(':') {
        Some((tenant, path)) if session.host().tenant(tenant).is_some() => {
            (tenant.to_string(), path)
        }
        _ => (session.default_tenant().to_string(), value),
    }
}

fn run(cli: &BenchCli) {
    let mut host = EngineHost::new();
    let specs = cli.all("tenant");
    let durable_dir = cli.value("durable");
    if specs.is_empty() {
        // Single-tenant fallback: one securities host from --state.
        let state_path = cli.value("state").unwrap_or("serve-state.json");
        host.add_tenant(
            "securities",
            resume_one(
                "securities",
                "securities",
                state_path,
                cli.value("model"),
                durable_dir,
            ),
        )
        .expect("register fallback tenant");
    } else {
        for spec in specs {
            // NAME:DOMAIN:STATE[:MODEL]
            let parts: Vec<&str> = spec.splitn(4, ':').collect();
            let [name, domain, state_path] = parts[..3] else {
                panic!("--tenant wants NAME:DOMAIN:STATE[:MODEL], got {spec:?}");
            };
            host.add_tenant(
                name,
                resume_one(name, domain, state_path, parts.get(3).copied(), durable_dir),
            )
            .unwrap_or_else(|e| panic!("registering tenant {name}: {e}"));
        }
    }
    let mut session = HostSession::new(host).expect("serve run needs at least one tenant");

    for value in cli.all("apply") {
        let (tenant, path) = tenant_path(&session, value);
        let batch = load_batch_json(path).unwrap_or_else(|e| panic!("{path}: {e:?}"));
        let (outcome, seconds) = session
            .apply_json(&tenant, &batch)
            .unwrap_or_else(|e| panic!("{path} → {tenant}: {e}"));
        println!("{path} → {tenant}: {}", latency_line(&outcome, seconds));
    }

    if let Some(addr) = cli.value("listen") {
        let readers = cli.usize_value("readers").unwrap_or(4);
        let listener = TcpListener::bind(addr).unwrap_or_else(|e| panic!("binding {addr}: {e}"));
        let local = listener.local_addr().expect("bound socket has an address");
        eprintln!(
            "serve: listening on {local} with {readers} reader thread(s), {} tenant(s); send \
             `shutdown` to stop",
            session.host().len()
        );
        let script = cli
            .value("client-script")
            .map(|path| std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}")));
        let client =
            script.map(|script| std::thread::spawn(move || run_client_script(local, &script)));
        let (finished, report) = serve_tcp(listener, session, readers).expect("serve loop");
        session = finished;
        if let Some(client) = client {
            client.join().expect("client script panicked");
        }
        eprintln!(
            "serve: served {} request(s) over {} connection(s)",
            report.requests, report.connections
        );
    } else {
        serve_stdin(&mut session);
    }

    for name in session.host().names() {
        let latency = session.latency(name).expect("tenant has a histogram");
        if latency.count() > 0 {
            eprintln!(
                "serve: tenant {name} batch apply latency {}",
                latency.summary()
            );
        }
    }
    for value in cli.all("save-state") {
        let (tenant, path) = tenant_path(&session, value);
        let message = session
            .save_state(&tenant, path)
            .unwrap_or_else(|e| panic!("saving {path}: {e}"));
        eprintln!("serve: {message}");
    }
}

/// Stream a request file through a real TCP client against our own
/// listener, echoing request → response pairs, and shut the server down
/// at the end — one process, end-to-end over the wire (CI's
/// tenant-smoke).
fn run_client_script(addr: std::net::SocketAddr, script: &str) {
    let stream = TcpStream::connect(addr).expect("connect to own listener");
    let mut writer = stream.try_clone().expect("clone client stream");
    let mut reader = BufReader::new(stream);
    let mut lines: Vec<&str> = script
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty())
        .collect();
    if lines.last() != Some(&"shutdown") {
        lines.push("shutdown");
    }
    for line in lines {
        writeln!(writer, "{line}").expect("send request line");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response line");
        println!("{line} → {}", response.trim_end());
    }
}

/// The stdin protocol loop. Every failure — unknown command or tenant,
/// malformed inline batch JSON, rejected apply, even non-UTF-8 input —
/// answers with an in-stream `error: <code>: <message>` line; only EOF,
/// `shutdown`, or an unreadable stdin ends the loop.
fn serve_stdin(session: &mut HostSession) {
    let mut cursor = session.default_tenant().to_string();
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match input.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                println!("error: io: stdin read failed: {e}");
                break;
            }
        }
        // Invalid UTF-8 turns into replacement characters and falls
        // through to a protocol error instead of terminating the service.
        let line = String::from_utf8_lossy(&buf).trim().to_string();
        if line == "shutdown" {
            println!("shutting down");
            break;
        }
        match session.command(&mut cursor, &line) {
            Ok(response) if response.is_empty() => {}
            Ok(response) => println!("{response}"),
            Err(message) => println!("error: {message}"),
        }
    }
}

fn main() {
    let cli = BenchCli::parse(&[
        "domain",
        "shards",
        "deltas",
        "deltas-out",
        "state",
        "model",
        "tenant",
        "durable",
        "apply",
        "save-state",
        "listen",
        "readers",
        "client-script",
    ]);
    match cli.positional().first().map(String::as_str) {
        Some("bootstrap") => bootstrap(&cli),
        Some("run") => run(&cli),
        other => {
            eprintln!(
                "usage: serve bootstrap|run [--domain D] [--shards N] [--deltas K] \
                 [--deltas-out DIR] [--state FILE] [--model FILE] \
                 [--tenant NAME:DOMAIN:STATE[:MODEL]]... [--durable DIR] \
                 [--apply [TENANT:]FILE]... \
                 [--save-state [TENANT:]FILE]... [--listen ADDR] [--readers N] \
                 [--client-script FILE] (got {other:?})"
            );
            std::process::exit(2);
        }
    }
}
