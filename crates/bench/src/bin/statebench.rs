//! Binary state persistence benchmark: snapshot save/load and WAL
//! replay vs the JSON `PipelineState` codec.
//!
//! Bootstraps a securities engine over the leading 70 % of the scaled
//! synthetic benchmark (`GRALMATCH_SCALE`), then times, over `--reps`
//! repetitions:
//!
//! * **JSON save/load** — `PipelineState::to_json` pretty text to disk,
//!   read + parse + `from_json` back (the `save_state`/resume path);
//! * **binary save/load** — `encode_state` + atomic write, read +
//!   `decode_state` (the checkpoint/recovery path, `docs/STATE.md`);
//! * **WAL append** — encoding each churn batch over the remaining 30 %
//!   and appending it to a fresh log (the per-batch durability cost,
//!   which must scale with the *delta*, not the standing state);
//! * **WAL replay** — recovering a second engine from the binary
//!   snapshot and replaying every appended frame.
//!
//! The report (default `STATEBENCH.json`, or merged into a repro report
//! with `--merge-into`) carries a gated `state` object
//! (`state:snapshot_save_s`, `state:snapshot_load_s`,
//! `state:wal_replay_s` — seconds, bigger = worse) and an ungated
//! `state_info` object with the JSON timings, speedups, and file sizes.
//! `--mode json` swaps the JSON codec's timings into the gated
//! save/load slots — CI uses that to verify `perfcmp` fails when the
//! binary fast path is replaced by the JSON codec.
//!
//! Exits nonzero when binary load is less than `--min-speedup` (default
//! 5) times faster than JSON load, or when the replayed engine's groups
//! diverge from the directly-advanced oracle. The report is written
//! before the checks so baseline regeneration works everywhere.

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::{prepare_synthetic, Scale};
use gralmatch_bench::serve::{serve_config, ServeDomain};
use gralmatch_core::{
    churn_window, persist, scorer_provider, MatchEngine, PipelineState, ShardPlan, UpsertBatch,
    WalWriter,
};
use gralmatch_records::SecurityRecord;
use gralmatch_util::{FromJson, Json, Stopwatch, ToJson};

fn main() {
    let cli = BenchCli::parse(&["merge-into", "mode", "reps", "min-speedup", "batches"]);
    let out_path = cli.out_path("STATEBENCH.json");
    let scale = Scale::from_env();
    let mode = cli.value("mode").unwrap_or("binary");
    assert!(
        mode == "binary" || mode == "json",
        "--mode must be `binary` or `json`, got {mode:?}"
    );
    let reps = cli.usize_value("reps").unwrap_or(3).max(1);
    let num_batches = cli.usize_value("batches").unwrap_or(4).max(1);
    let min_speedup: f64 = cli
        .value("min-speedup")
        .map(|v| v.parse().expect("--min-speedup needs a number"))
        .unwrap_or(5.0);

    let records = prepare_synthetic(scale).data.securities.records().to_vec();
    let initial = records.len() * 7 / 10;
    let dir = std::env::temp_dir().join(format!("gralmatch-statebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create statebench scratch dir");

    let (mut engine, _) = MatchEngine::bootstrap(
        ShardPlan::new(4),
        records[..initial].to_vec(),
        SecurityRecord::serve_strategies(),
        scorer_provider::<SecurityRecord>(None),
        serve_config(),
    )
    .expect("bootstrap succeeds");
    println!(
        "statebench: scale {} — {} records bootstrapped ({} held out), {num_batches} churn \
         batches, {reps} reps",
        scale.0,
        initial,
        records.len() - initial
    );

    // ── JSON codec: the save_state / resume path ─────────────────────
    let json_path = dir.join("state.json");
    let mut json_save_s = 0.0;
    for _ in 0..reps {
        let watch = Stopwatch::start();
        let text = engine.state().to_json().to_pretty_string();
        std::fs::write(&json_path, &text).expect("write JSON state");
        json_save_s += watch.elapsed_secs();
    }
    let json_bytes = std::fs::metadata(&json_path)
        .expect("JSON state written")
        .len();
    let mut json_load_s = 0.0;
    for _ in 0..reps {
        let watch = Stopwatch::start();
        let text = std::fs::read_to_string(&json_path).expect("read JSON state");
        let json = Json::parse(&text).expect("parse JSON state");
        let state: PipelineState<SecurityRecord> =
            PipelineState::from_json(&json).expect("decode JSON state");
        json_load_s += watch.elapsed_secs();
        assert_eq!(state.num_live(), engine.stats().num_live);
    }

    // ── Binary codec: the checkpoint / recovery path ─────────────────
    let bin_path = dir.join("state.bin");
    let epoch = engine.snapshot().epoch();
    let batches_applied = engine.stats().batches_applied;
    let mut bin_save_s = 0.0;
    for _ in 0..reps {
        let watch = Stopwatch::start();
        let bytes = persist::encode_state(engine.state(), epoch, batches_applied);
        persist::write_atomic(&bin_path, &bytes, false).expect("write binary snapshot");
        bin_save_s += watch.elapsed_secs();
    }
    let bin_bytes = std::fs::metadata(&bin_path)
        .expect("snapshot written")
        .len();
    let mut bin_load_s = 0.0;
    for _ in 0..reps {
        let watch = Stopwatch::start();
        let bytes = std::fs::read(&bin_path).expect("read binary snapshot");
        let snapshot = persist::decode_state::<SecurityRecord>(&bytes).expect("decode snapshot");
        bin_load_s += watch.elapsed_secs();
        assert_eq!(snapshot.state.num_live(), engine.stats().num_live);
    }

    // ── WAL append: per-batch durability cost over the delta ─────────
    let remainder = &records[initial..];
    let chunk = remainder.len().div_ceil(num_batches).max(1);
    let mut batches: Vec<UpsertBatch<SecurityRecord>> = Vec::new();
    for (j, slice) in remainder.chunks(chunk).take(num_batches).enumerate() {
        let mut batch = UpsertBatch::inserting(slice.to_vec());
        batch.deletes = records[churn_window(initial, j, 9)]
            .iter()
            .map(|record| record.id)
            .collect();
        batches.push(batch);
    }
    let wal_scratch = persist::wal_path(&bin_path);
    let mut wal = WalWriter::open(&wal_scratch, false).expect("open WAL");
    let mut wal_append_s = 0.0;
    for (j, batch) in batches.iter().enumerate() {
        let watch = Stopwatch::start();
        let payload = persist::encode_batch(batch);
        wal.append(batches_applied as u64 + 1 + j as u64, &payload)
            .expect("append WAL frame");
        wal_append_s += watch.elapsed_secs();
    }
    drop(wal);
    let wal_bytes = std::fs::metadata(&wal_scratch).expect("WAL written").len();

    // Advance the oracle engine through the same batches in memory.
    for batch in &batches {
        engine.apply_batch(batch).expect("apply batch");
    }

    // ── Recovery: snapshot decode + WAL replay ───────────────────────
    let bytes = std::fs::read(&bin_path).expect("read binary snapshot");
    let snapshot = persist::decode_state::<SecurityRecord>(&bytes).expect("decode snapshot");
    let mut replayed = MatchEngine::from_state(
        snapshot.state,
        SecurityRecord::serve_strategies(),
        scorer_provider::<SecurityRecord>(None),
        serve_config(),
    );
    let replay_watch = Stopwatch::start();
    let frames = persist::read_wal(&wal_scratch).expect("read WAL");
    assert!(!frames.torn, "fresh WAL has no torn tail");
    for frame in &frames.frames {
        let batch =
            persist::decode_batch::<SecurityRecord>(&frame.payload).expect("decode WAL frame");
        replayed.apply_batch(&batch).expect("replay batch");
    }
    let wal_replay_s = replay_watch.elapsed_secs();

    let load_speedup = if bin_load_s > 0.0 {
        json_load_s / bin_load_s
    } else {
        f64::INFINITY
    };
    let save_speedup = if bin_save_s > 0.0 {
        json_save_s / bin_save_s
    } else {
        f64::INFINITY
    };
    println!(
        "statebench: load json {:.4}s vs binary {:.4}s → {load_speedup:.1}x; save json {:.4}s \
         vs binary {:.4}s → {save_speedup:.1}x; {} WAL frames appended in {wal_append_s:.4}s, \
         replayed in {wal_replay_s:.4}s",
        json_load_s,
        bin_load_s,
        json_save_s,
        bin_save_s,
        frames.frames.len()
    );

    // Gated section: seconds, bigger = worse. Default is the binary
    // path; `--mode json` injects the JSON codec's timings so CI can
    // prove the gate catches a fallback to it.
    let (gated_save, gated_load) = match mode {
        "json" => (json_save_s, json_load_s),
        _ => (bin_save_s, bin_load_s),
    };
    let state = Json::obj([
        ("snapshot_save_s", gated_save.to_json()),
        ("snapshot_load_s", gated_load.to_json()),
        ("wal_replay_s", wal_replay_s.to_json()),
    ]);
    let state_info = Json::obj([
        ("mode", Json::Str(mode.to_string())),
        ("load_speedup_vs_json", load_speedup.to_json()),
        ("save_speedup_vs_json", save_speedup.to_json()),
        ("json_save_s", json_save_s.to_json()),
        ("json_load_s", json_load_s.to_json()),
        ("binary_save_s", bin_save_s.to_json()),
        ("binary_load_s", bin_load_s.to_json()),
        ("wal_append_s", wal_append_s.to_json()),
        ("json_bytes", (json_bytes as f64).to_json()),
        ("binary_bytes", (bin_bytes as f64).to_json()),
        ("wal_bytes", (wal_bytes as f64).to_json()),
        ("wal_frames", (frames.frames.len() as f64).to_json()),
        ("reps", (reps as f64).to_json()),
        ("records", (records.len() as f64).to_json()),
    ]);
    write_report(&out_path, cli.value("merge-into"), state, state_info);

    // Correctness backstop: the replayed engine must equal the oracle.
    if replayed.groups() != engine.groups() {
        eprintln!("statebench: FAILED — snapshot+WAL recovery diverged from the oracle engine");
        std::process::exit(1);
    }
    if load_speedup < min_speedup {
        eprintln!(
            "statebench: FAILED — binary load only {load_speedup:.2}x the JSON codec \
             (expected ≥ {min_speedup}x)"
        );
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("statebench ok: {load_speedup:.1}x load speedup over JSON → {out_path}");
}

/// Write the standalone report, and optionally merge the two state
/// sections into an existing repro report (replacing prior ones).
fn write_report(out_path: &str, merge_into: Option<&str>, state: Json, state_info: Json) {
    let report = Json::obj([("state", state.clone()), ("state_info", state_info.clone())]);
    std::fs::write(out_path, report.to_pretty_string()).expect("write statebench report");
    let Some(path) = merge_into else { return };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let mut target = Json::parse(&text).unwrap_or_else(|e| panic!("{path}: {}", e.message));
    let Json::Obj(fields) = &mut target else {
        panic!("{path} is not a JSON object");
    };
    fields.retain(|(key, _)| key != "state" && key != "state_info");
    fields.push(("state".to_string(), state));
    fields.push(("state_info".to_string(), state_info));
    std::fs::write(path, target.to_pretty_string()).expect("write merged report");
    eprintln!("statebench: merged state sections into {path}");
}
