//! Regenerates Table 1: dataset statistics, paper vs measured.
//!
//! Usage: `cargo run -p gralmatch-bench --bin table1 --release`
//! Scale via `GRALMATCH_SCALE` (default 0.02; 1.0 = paper size).
//! Paper counts are scaled by the factor for like-for-like comparison.

use gralmatch_bench::harness::{prepare_real_sim, prepare_synthetic, Scale};
use gralmatch_bench::paper::TABLE1;
use gralmatch_bench::table::render;
use gralmatch_datagen::DatasetStats;

fn fmt_count(value: f64) -> String {
    if value >= 1_000_000.0 {
        format!("{:.2}M", value / 1e6)
    } else if value >= 1_000.0 {
        format!("{:.1}K", value / 1e3)
    } else {
        format!("{value:.0}")
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("Table 1 — dataset statistics (scale factor {})", scale.0);
    println!("Cells are `paper (scaled) / measured`.\n");

    let synthetic = prepare_synthetic(scale);
    let real = prepare_real_sim();

    let companies = DatasetStats::for_companies(&synthetic.data.companies);
    let securities = DatasetStats::for_securities(&synthetic.data.securities);
    let real_companies = DatasetStats::for_companies(&real.data.companies);
    let real_securities = DatasetStats::for_securities(&real.data.securities);

    let rows: Vec<(&str, &DatasetStats, f64)> = vec![
        ("Synthetic Companies", &companies, scale.0),
        ("Synthetic Securities", &securities, scale.0),
        // The real-subset simulator is a fixed-size stand-in; compare its
        // *shape* (sources, ratios) rather than scaled counts.
        ("Real Companies (est.)", &real_companies, f64::NAN),
        ("Real Securities (est.)", &real_securities, f64::NAN),
    ];

    let mut table_rows = Vec::new();
    for (label, stats, factor) in rows {
        let paper = TABLE1
            .iter()
            .find(|c| c.dataset == label)
            .expect("known dataset");
        let scale_value = |v: f64| {
            if factor.is_nan() {
                f64::NAN
            } else {
                v * factor
            }
        };
        let cell = |paper_value: f64, measured: f64| {
            if paper_value.is_nan() {
                format!("- / {}", fmt_count(measured))
            } else {
                format!("{} / {}", fmt_count(paper_value), fmt_count(measured))
            }
        };
        table_rows.push(vec![
            label.to_string(),
            format!("{:.0} / {}", paper.sources, stats.num_sources),
            cell(scale_value(paper.entities), stats.num_entities as f64),
            cell(scale_value(paper.records), stats.num_records as f64),
            cell(scale_value(paper.matches), stats.num_matches as f64),
            format!(
                "{:.1} / {:.1}",
                paper.avg_matches, stats.avg_matches_per_entity
            ),
            match (paper.pct_descriptions, stats.pct_with_descriptions) {
                (Some(p), Some(m)) => format!("{:.0}% / {:.0}%", p * 100.0, m * 100.0),
                _ => "- / -".to_string(),
            },
        ]);
    }

    println!(
        "{}",
        render(
            &[
                "Dataset",
                "# Sources",
                "# Entities",
                "# Records",
                "# Matches",
                "Avg matches/entity",
                "% w/ descriptions",
            ],
            &table_rows,
        )
    );
    println!("Note: real columns compare against the paper's *estimates* for the");
    println!("full vendor feeds; our real-subset simulator reproduces the labeled");
    println!("subset's shape (8 sources, low edge-case rate), not those totals.");
}
