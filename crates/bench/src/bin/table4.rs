//! Regenerates Table 4: end-to-end entity group matching with blocking and
//! GraLMatch, including the sensitivity variants (MEC, ½γ, BC).
//!
//! Usage: `cargo run -p gralmatch-bench --bin table4 --release -- [--shards N] [--save-model DIR] [--load-model DIR]`
//! Cells print `paper / measured` percentages for each of the three stages
//! (pairwise on blocked pairs, pre graph cleanup, post graph cleanup).
//! `--save-model` / `--load-model` persist / reuse the trained matchers
//! (`SavedModel` JSON, bit-identical scores on reload).

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::{
    prepare_real_sim, prepare_synthetic, prepare_wdc, run_companies_table4,
    run_companies_table4_with, run_securities_table4, run_wdc_table4, train_spec, ModelStore,
    Scale, Table4Cell,
};
use gralmatch_bench::paper::table4_reference;
use gralmatch_bench::table::{pct, render};
use gralmatch_core::CleanupVariant;
use gralmatch_lm::ModelSpec;
use gralmatch_util::format_duration;
use std::time::Duration;

fn push_row(rows: &mut Vec<Vec<String>>, dataset: &str, model_label: &str, cell: &Table4Cell) {
    let reference = table4_reference(dataset, model_label);
    let outcome = &cell.outcome;
    let fmt3 = |paper: Option<(f64, f64, f64)>, p: f64, r: f64, f1: f64| match paper {
        Some((pp, pr, pf)) => format!(
            "{}/{}/{} vs {}/{}/{}",
            pct(pp),
            pct(pr),
            pct(pf),
            pct(p),
            pct(r),
            pct(f1)
        ),
        None => format!("- vs {}/{}/{}", pct(p), pct(r), pct(f1)),
    };
    let purity = |paper: Option<f64>, measured: f64| match paper {
        Some(p) => format!("{p:.2} vs {measured:.2}"),
        None => format!("- vs {measured:.2}"),
    };
    rows.push(vec![
        dataset.to_string(),
        model_label.to_string(),
        fmt3(
            reference.map(|r| r.pairwise),
            outcome.pairwise.precision,
            outcome.pairwise.recall,
            outcome.pairwise.f1,
        ),
        fmt3(
            reference.map(|r| (r.pre.0, r.pre.1, r.pre.2)),
            outcome.pre_cleanup.pairs.precision,
            outcome.pre_cleanup.pairs.recall,
            outcome.pre_cleanup.pairs.f1,
        ),
        purity(
            reference.map(|r| r.pre.3),
            outcome.pre_cleanup.cluster_purity,
        ),
        fmt3(
            reference.map(|r| (r.post.0, r.post.1, r.post.2)),
            outcome.post_cleanup.pairs.precision,
            outcome.post_cleanup.pairs.recall,
            outcome.post_cleanup.pairs.f1,
        ),
        purity(
            reference.map(|r| r.post.3),
            outcome.post_cleanup.cluster_purity,
        ),
        format_duration(Duration::from_secs_f64(outcome.inference_seconds())),
        stage_seconds(outcome),
    ]);
    eprintln!("  done: {dataset} / {model_label}");
}

/// Compact per-stage timing cell: the engine lineup
/// blocking/inference/merge (the merge covers cleanup + grouping).
fn stage_seconds(outcome: &gralmatch_core::MatchingOutcome) -> String {
    use gralmatch_core::stage_names;
    [
        stage_names::BLOCKING,
        stage_names::INFERENCE,
        stage_names::MERGE,
    ]
    .iter()
    .map(|stage| format!("{:.2}", outcome.trace.seconds_for(stage)))
    .collect::<Vec<_>>()
    .join("/")
}

fn main() {
    let scale = Scale::from_env();
    let cli = BenchCli::parse(&["shards", "save-model", "load-model"]);
    let shards = cli.shards_or(1);
    let store = ModelStore::from_cli(&cli);
    println!(
        "Table 4 — end-to-end entity group matching (scale factor {}, {} shard{})",
        scale.0,
        shards,
        if shards == 1 { "" } else { "s" }
    );
    println!("Stage cells are `paper P/R/F1 vs measured P/R/F1`.\n");

    let synthetic = prepare_synthetic(scale);
    let real = prepare_real_sim();
    let wdc = prepare_wdc();
    let mut rows: Vec<Vec<String>> = Vec::new();

    // Real companies: γ=40, μ=8 (Table 2).
    for spec in [
        ModelSpec::Ditto128,
        ModelSpec::Ditto256,
        ModelSpec::DistilBert128All,
    ] {
        let cell = run_companies_table4(
            &real,
            spec,
            40,
            8,
            CleanupVariant::Full,
            shards,
            &store,
            "real",
        );
        push_row(&mut rows, "Real Companies", spec.display_name(), &cell);
    }

    // Synthetic companies: γ=25, μ=5 + sensitivity variants on -ALL.
    for spec in ModelSpec::ALL {
        if spec == ModelSpec::DistilBert128All {
            // Train (or load) once, reuse across the Full/MEC/½γ/BC
            // variants.
            let (matcher, train_seconds) = store.load_or_train("synthetic-companies", spec, || {
                train_spec(
                    synthetic.data.companies.records(),
                    &synthetic.company_gt,
                    &synthetic.company_split,
                    spec,
                )
            });
            let variants = [
                (CleanupVariant::Full, "DistilBERT (128)-ALL"),
                (CleanupVariant::MinCutOnly, "DistilBERT (128)-ALL-MEC"),
                (CleanupVariant::HalfGamma, "DistilBERT (128)-ALL (1/2 g)"),
                (CleanupVariant::BetweennessOnly, "DistilBERT (128)-ALL-BC"),
            ];
            for (variant, label) in variants {
                let cell = run_companies_table4_with(
                    &synthetic,
                    &matcher,
                    train_seconds,
                    spec,
                    25,
                    5,
                    variant,
                    shards,
                );
                push_row(&mut rows, "Synthetic Companies", label, &cell);
            }
        } else {
            let cell = run_companies_table4(
                &synthetic,
                spec,
                25,
                5,
                CleanupVariant::Full,
                shards,
                &store,
                "synthetic",
            );
            push_row(&mut rows, "Synthetic Companies", spec.display_name(), &cell);
        }
    }

    // Real securities: γ=40, μ=8.
    for spec in [
        ModelSpec::Ditto128,
        ModelSpec::Ditto256,
        ModelSpec::DistilBert128All,
    ] {
        let cell = run_securities_table4(&real, spec, 40, 8, shards, &store, "real");
        push_row(&mut rows, "Real Securities", spec.display_name(), &cell);
    }

    // Synthetic securities: γ=25, μ=5.
    for spec in ModelSpec::ALL {
        let cell = run_securities_table4(&synthetic, spec, 25, 5, shards, &store, "synthetic");
        push_row(
            &mut rows,
            "Synthetic Securities",
            spec.display_name(),
            &cell,
        );
    }

    // WDC products: γ=25, μ=5.
    for spec in [
        ModelSpec::Ditto128,
        ModelSpec::Ditto256,
        ModelSpec::DistilBert128All,
    ] {
        let cell = run_wdc_table4(&wdc, spec, 25, 5, shards, &store);
        push_row(&mut rows, "WDC Products", spec.display_name(), &cell);
    }

    println!(
        "{}",
        render(
            &[
                "Dataset",
                "Model",
                "Pairwise P/R/F1",
                "Pre-Cleanup P/R/F1",
                "Pre ClPur",
                "Post-Cleanup P/R/F1",
                "Post ClPur",
                "Inference",
                "Stage secs b/i/m",
            ],
            &rows,
        )
    );
    println!("Key shapes to check against the paper: (1) pre-cleanup precision");
    println!("collapses on companies (transitive false positives) and recovers");
    println!("post-cleanup; (2) higher pairwise precision ⇒ better post-cleanup F1;");
    println!("(3) WDC's heterogeneous groups break the fixed-μ cleanup (recall drop).");
}
