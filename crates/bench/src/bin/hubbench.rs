//! Hub-entity cleanup benchmark: the worst case the cleanup rewrite is
//! for.
//!
//! Builds the [`hub_graph`] workload (per-hub mega-components of cliques
//! welded together by bridge edges to one popular record, plus churn
//! batches that keep re-adding the hub bridges) and runs the same
//! bootstrap-then-churn protocol through both cleanup implementations:
//!
//! * **new** — [`graph_cleanup_with_pool`]: bridge-first splitting, one
//!   mutable scratch graph per component lineage, per-component fan-out;
//! * **reference** — [`reference_graph_cleanup`]: the seed algorithm that
//!   re-induces the component and runs Stoer–Wagner after every removal.
//!
//! The report (default `HUBBENCH.json`, or merged into a repro report
//! with `--merge-into`) carries a gated `cleanup` object
//! (`cleanup:hub_bootstrap_s`, `cleanup:hub_churn_s` — seconds, bigger =
//! worse) and an ungated `cleanup_info` object with the speedup, both
//! paths' timings, and workload shape. `--mode reference` swaps the
//! reference timings into the gated section — CI uses that to verify
//! `perfcmp` fails on an injected sequential-full-recompute fallback.
//!
//! Exits nonzero when the new path is less than `--min-speedup` (default
//! 4) times faster than the reference, or when either path leaves an
//! oversized component behind. The report is written before the checks so
//! baseline regeneration works everywhere.

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::Scale;
use gralmatch_core::{
    graph_cleanup_with_pool, reference_graph_cleanup, CleanupConfig, CleanupReport,
};
use gralmatch_datagen::{hub_graph, HubConfig, HubGraph};
use gralmatch_graph::{largest_component, Graph};
use gralmatch_util::{Json, Parallelism, Stopwatch, ToJson, WorkerPool};

/// One implementation's run over the bootstrap + churn protocol.
struct ProtocolRun {
    bootstrap_s: f64,
    churn_s: f64,
    report: CleanupReport,
    largest_after: usize,
}

impl ProtocolRun {
    fn total(&self) -> f64 {
        self.bootstrap_s + self.churn_s
    }
}

/// Run `reps` repetitions of bootstrap-clean + churn-reclean, summing
/// wall-clock (totals, not per-rep means, so the gated numbers aggregate
/// like every other stage line).
fn run_protocol(
    hub: &HubGraph,
    reps: usize,
    mut clean: impl FnMut(&mut Graph) -> CleanupReport,
) -> ProtocolRun {
    let mut bootstrap_s = 0.0;
    let mut churn_s = 0.0;
    let mut report = CleanupReport::default();
    let mut largest_after = 0;
    for _ in 0..reps {
        let mut graph = Graph::with_nodes(hub.num_nodes);
        for &(a, b) in &hub.bootstrap_edges {
            graph.add_edge(a, b);
        }
        let watch = Stopwatch::start();
        report.merge(&clean(&mut graph));
        bootstrap_s += watch.elapsed_secs();
        for batch in &hub.churn_batches {
            for &(a, b) in batch {
                graph.add_edge(a, b);
            }
            let watch = Stopwatch::start();
            report.merge(&clean(&mut graph));
            churn_s += watch.elapsed_secs();
        }
        largest_after = largest_component(&graph).map_or(0, |c| c.len());
    }
    ProtocolRun {
        bootstrap_s,
        churn_s,
        report,
        largest_after,
    }
}

fn main() {
    let cli = BenchCli::parse(&["merge-into", "mode", "reps", "min-speedup"]);
    let out_path = cli.out_path("HUBBENCH.json");
    let scale = Scale::from_env();
    let mode = cli.value("mode").unwrap_or("new");
    assert!(
        mode == "new" || mode == "reference",
        "--mode must be `new` or `reference`, got {mode:?}"
    );
    let reps = cli.usize_value("reps").unwrap_or(3).max(1);
    let min_speedup: f64 = cli
        .value("min-speedup")
        .map(|v| v.parse().expect("--min-speedup needs a number"))
        .unwrap_or(4.0);

    let hub_config = HubConfig::scaled(scale.0);
    let hub = hub_graph(&hub_config);
    // γ just above the clique size, μ at it: every hub bridge must go,
    // every clique must survive — the thresholds the workload is built for.
    let cleanup_config = CleanupConfig::new(hub_config.group_size + 1, hub_config.group_size);
    println!(
        "hubbench: {} hubs × {} groups of {} ({} nodes, mega-component {}), {} churn batches, \
         {reps} reps",
        hub_config.hubs,
        hub_config.groups_per_hub,
        hub_config.group_size,
        hub.num_nodes,
        hub.mega_component_size,
        hub.churn_batches.len()
    );

    let pool: WorkerPool = Parallelism::Auto.pool_for(hub.bootstrap_edges.len());
    let new_run = run_protocol(&hub, reps, |graph| {
        graph_cleanup_with_pool(graph, &cleanup_config, &pool)
    });
    let reference_run = run_protocol(&hub, reps, |graph| {
        reference_graph_cleanup(graph, &cleanup_config)
    });
    let speedup = if new_run.total() > 0.0 {
        reference_run.total() / new_run.total()
    } else {
        f64::INFINITY
    };
    println!(
        "hubbench: new {:.4}s (bootstrap {:.4}s + churn {:.4}s) vs reference {:.4}s → {speedup:.1}x",
        new_run.total(),
        new_run.bootstrap_s,
        new_run.churn_s,
        reference_run.total()
    );

    // Gated section: seconds, bigger = worse. Default is the new path;
    // `--mode reference` injects the sequential full-recompute numbers so
    // CI can prove the gate catches that fallback.
    let gated = match mode {
        "reference" => &reference_run,
        _ => &new_run,
    };
    let cleanup = Json::obj([
        ("hub_bootstrap_s", gated.bootstrap_s.to_json()),
        ("hub_churn_s", gated.churn_s.to_json()),
    ]);
    let cleanup_info = Json::obj([
        ("mode", Json::Str(mode.to_string())),
        ("speedup_vs_reference", speedup.to_json()),
        ("new_bootstrap_s", new_run.bootstrap_s.to_json()),
        ("new_churn_s", new_run.churn_s.to_json()),
        ("reference_bootstrap_s", reference_run.bootstrap_s.to_json()),
        ("reference_churn_s", reference_run.churn_s.to_json()),
        ("reps", (reps as f64).to_json()),
        ("nodes", (hub.num_nodes as f64).to_json()),
        (
            "mega_component_size",
            (hub.mega_component_size as f64).to_json(),
        ),
        (
            "bootstrap_edges",
            (hub.bootstrap_edges.len() as f64).to_json(),
        ),
        ("churn_batches", (hub.churn_batches.len() as f64).to_json()),
        (
            "new_mincut_removed",
            (new_run.report.mincut_removed as f64).to_json(),
        ),
        (
            "new_betweenness_removed",
            (new_run.report.betweenness_removed as f64).to_json(),
        ),
    ]);
    write_report(&out_path, cli.value("merge-into"), cleanup, cleanup_info);

    // Correctness backstop: both paths must leave every component ≤ μ.
    for (name, run) in [("new", &new_run), ("reference", &reference_run)] {
        if run.largest_after > hub_config.group_size {
            eprintln!(
                "hubbench: FAILED — {name} cleanup left a component of {} (> μ = {})",
                run.largest_after, hub_config.group_size
            );
            std::process::exit(1);
        }
    }
    if speedup < min_speedup {
        eprintln!(
            "hubbench: FAILED — new cleanup only {speedup:.2}x the sequential full-recompute \
             reference (expected ≥ {min_speedup}x)"
        );
        std::process::exit(1);
    }
    println!("hubbench ok: {speedup:.1}x over reference → {out_path}");
}

/// Write the standalone report, and optionally merge the two cleanup
/// sections into an existing repro report (replacing prior ones).
fn write_report(out_path: &str, merge_into: Option<&str>, cleanup: Json, cleanup_info: Json) {
    let report = Json::obj([
        ("cleanup", cleanup.clone()),
        ("cleanup_info", cleanup_info.clone()),
    ]);
    std::fs::write(out_path, report.to_pretty_string()).expect("write hubbench report");
    let Some(path) = merge_into else { return };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let mut target = Json::parse(&text).unwrap_or_else(|e| panic!("{path}: {}", e.message));
    let Json::Obj(fields) = &mut target else {
        panic!("{path} is not a JSON object");
    };
    fields.retain(|(key, _)| key != "cleanup" && key != "cleanup_info");
    fields.push(("cleanup".to_string(), cleanup));
    fields.push(("cleanup_info".to_string(), cleanup_info));
    std::fs::write(path, target.to_pretty_string()).expect("write merged report");
    eprintln!("hubbench: merged cleanup sections into {path}");
}
