//! Hub-entity cleanup benchmark: the worst case the cleanup rewrite is
//! for.
//!
//! Builds the [`hub_graph`] workload (per-hub mega-components of cliques
//! welded together by bridge edges to one popular record, plus churn
//! batches that keep re-adding the hub bridges) and runs the same
//! bootstrap-then-churn protocol through both cleanup implementations:
//!
//! * **new** — [`graph_cleanup_with_pool`]: bridge-first splitting, one
//!   mutable scratch graph per component lineage, per-component fan-out;
//! * **reference** — [`reference_graph_cleanup`]: the seed algorithm that
//!   re-induces the component and runs Stoer–Wagner after every removal.
//!
//! `--steady` adds a third protocol: a long steady-state schedule
//! ([`hub_steady_schedule`]) that re-adds every hub bridge each batch and
//! retracts/restores interior clique edges (delete-created bridges), run
//! once with a warm [`CutIndex`] fed the exact edge deltas
//! ([`graph_cleanup_with_index`]) and once through the sequential rescan
//! path ([`graph_cleanup`]). The two runs must produce bit-identical final
//! edge sets, and the indexed run must be at least `--min-steady-speedup`
//! (default 3) times faster.
//!
//! The report (default `HUBBENCH.json`, or merged into a repro report
//! with `--merge-into`) carries a gated `cleanup` object
//! (`cleanup:hub_bootstrap_s`, `cleanup:hub_churn_s`, and with `--steady`
//! `cleanup:hub_steady_s` — seconds, bigger = worse) and an ungated
//! `cleanup_info` object with the speedups, both paths' timings, and
//! workload shape. `--mode reference` swaps the reference timings into
//! the gated bootstrap/churn lines and `--mode rescan` swaps the
//! un-indexed steady timing into `cleanup:hub_steady_s` — CI uses those
//! to verify `perfcmp` fails on either injected fallback.
//!
//! Exits nonzero when the new path is less than `--min-speedup` (default
//! 4) times faster than the reference, when the steady speedup falls
//! short, or when any path leaves an oversized component behind. The
//! report is written before the checks so baseline regeneration works
//! everywhere.

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::Scale;
use gralmatch_core::{
    graph_cleanup, graph_cleanup_with_index, graph_cleanup_with_pool, reference_graph_cleanup,
    CleanupConfig, CleanupReport,
};
use gralmatch_datagen::{hub_graph, hub_steady_schedule, HubConfig, HubGraph, SteadyBatch};
use gralmatch_graph::{largest_component, CutIndex, Edge, Graph};
use gralmatch_util::{Json, Parallelism, Stopwatch, ToJson, WorkerPool};

/// One implementation's run over the bootstrap + churn protocol.
struct ProtocolRun {
    bootstrap_s: f64,
    churn_s: f64,
    report: CleanupReport,
    largest_after: usize,
}

impl ProtocolRun {
    fn total(&self) -> f64 {
        self.bootstrap_s + self.churn_s
    }
}

/// Run `reps` repetitions of bootstrap-clean + churn-reclean, summing
/// wall-clock (totals, not per-rep means, so the gated numbers aggregate
/// like every other stage line).
fn run_protocol(
    hub: &HubGraph,
    reps: usize,
    mut clean: impl FnMut(&mut Graph) -> CleanupReport,
) -> ProtocolRun {
    let mut bootstrap_s = 0.0;
    let mut churn_s = 0.0;
    let mut report = CleanupReport::default();
    let mut largest_after = 0;
    for _ in 0..reps {
        let mut graph = Graph::with_nodes(hub.num_nodes);
        for &(a, b) in &hub.bootstrap_edges {
            graph.add_edge(a, b);
        }
        let watch = Stopwatch::start();
        report.merge(&clean(&mut graph));
        bootstrap_s += watch.elapsed_secs();
        for batch in &hub.churn_batches {
            for &(a, b) in batch {
                graph.add_edge(a, b);
            }
            let watch = Stopwatch::start();
            report.merge(&clean(&mut graph));
            churn_s += watch.elapsed_secs();
        }
        largest_after = largest_component(&graph).map_or(0, |c| c.len());
    }
    ProtocolRun {
        bootstrap_s,
        churn_s,
        report,
        largest_after,
    }
}

/// One implementation's run over the steady-state churn protocol.
struct SteadyRun {
    steady_s: f64,
    report: CleanupReport,
    largest_after: usize,
    /// Sorted edge set after the final re-clean of each rep — the indexed
    /// and rescan paths must agree bit for bit.
    final_edges: Vec<Edge>,
}

/// Run `reps` repetitions of the steady-state protocol: bootstrap-clean
/// once (untimed), then per steady batch re-add every hub bridge, apply
/// the batch's interior restores/retractions, and re-clean (timed). With
/// `indexed`, a [`CutIndex`] is kept warm across the whole rep via the
/// same delta feed the engine's merge uses; otherwise each re-clean is the
/// sequential rescan path, isolating the index win from pool parallelism.
fn run_steady(
    hub: &HubGraph,
    config: &CleanupConfig,
    hub_bridges: &[(u32, u32)],
    schedule: &[SteadyBatch],
    reps: usize,
    indexed: bool,
) -> SteadyRun {
    let mut steady_s = 0.0;
    let mut report = CleanupReport::default();
    let mut largest_after = 0;
    let mut final_edges = Vec::new();
    for _ in 0..reps {
        let mut graph = Graph::with_nodes(hub.num_nodes);
        for &(a, b) in &hub.bootstrap_edges {
            graph.add_edge(a, b);
        }
        let mut index = CutIndex::new();
        if indexed {
            index.rebuild_from(&graph);
            graph_cleanup_with_index(&mut graph, config, &mut index);
        } else {
            graph_cleanup(&mut graph, config);
        }
        for batch in schedule {
            for &(a, b) in hub_bridges.iter().chain(&batch.add) {
                if graph.add_edge(a, b) && indexed {
                    index.insert_edge(a, b);
                }
            }
            for &(a, b) in &batch.remove {
                if graph.remove_edge(a, b) && indexed {
                    index.remove_edge(a, b);
                }
            }
            let watch = Stopwatch::start();
            let batch_report = if indexed {
                graph_cleanup_with_index(&mut graph, config, &mut index)
            } else {
                graph_cleanup(&mut graph, config)
            };
            steady_s += watch.elapsed_secs();
            report.merge(&batch_report);
        }
        largest_after = largest_component(&graph).map_or(0, |c| c.len());
        final_edges = graph.edges().collect();
        final_edges.sort();
    }
    SteadyRun {
        steady_s,
        report,
        largest_after,
        final_edges,
    }
}

fn main() {
    let cli = BenchCli::parse_with_switches(
        &[
            "merge-into",
            "mode",
            "reps",
            "min-speedup",
            "min-steady-speedup",
            "steady-batches",
        ],
        &["steady"],
    );
    let out_path = cli.out_path("HUBBENCH.json");
    let scale = Scale::from_env();
    let steady = cli.switch("steady");
    let mode = cli.value("mode").unwrap_or("new");
    assert!(
        mode == "new" || mode == "reference" || mode == "rescan",
        "--mode must be `new`, `reference` or `rescan`, got {mode:?}"
    );
    assert!(
        mode != "rescan" || steady,
        "--mode rescan only makes sense with --steady"
    );
    let reps = cli.usize_value("reps").unwrap_or(3).max(1);
    let min_speedup: f64 = cli
        .value("min-speedup")
        .map(|v| v.parse().expect("--min-speedup needs a number"))
        .unwrap_or(4.0);
    let min_steady_speedup: f64 = cli
        .value("min-steady-speedup")
        .map(|v| v.parse().expect("--min-steady-speedup needs a number"))
        .unwrap_or(3.0);

    let hub_config = HubConfig::scaled(scale.0);
    let hub = hub_graph(&hub_config);
    // γ just above the clique size, μ at it: every hub bridge must go,
    // every clique must survive — the thresholds the workload is built for.
    let cleanup_config = CleanupConfig::new(hub_config.group_size + 1, hub_config.group_size);
    println!(
        "hubbench: {} hubs × {} groups of {} ({} nodes, mega-component {}), {} churn batches, \
         {reps} reps",
        hub_config.hubs,
        hub_config.groups_per_hub,
        hub_config.group_size,
        hub.num_nodes,
        hub.mega_component_size,
        hub.churn_batches.len()
    );

    let pool: WorkerPool = Parallelism::Auto.pool_for(hub.bootstrap_edges.len());
    let new_run = run_protocol(&hub, reps, |graph| {
        graph_cleanup_with_pool(graph, &cleanup_config, &pool)
    });
    let reference_run = run_protocol(&hub, reps, |graph| {
        reference_graph_cleanup(graph, &cleanup_config)
    });
    let speedup = if new_run.total() > 0.0 {
        reference_run.total() / new_run.total()
    } else {
        f64::INFINITY
    };
    println!(
        "hubbench: new {:.4}s (bootstrap {:.4}s + churn {:.4}s) vs reference {:.4}s → {speedup:.1}x",
        new_run.total(),
        new_run.bootstrap_s,
        new_run.churn_s,
        reference_run.total()
    );

    // Steady-state protocol: a long schedule that keeps re-adding the same
    // hub bridges and retracting/restoring interior clique edges, run with
    // a warm CutIndex vs the sequential rescan path.
    let steady_runs = steady.then(|| {
        let batches = cli
            .usize_value("steady-batches")
            .unwrap_or(hub.churn_batches.len() * 4)
            .max(1);
        let schedule = hub_steady_schedule(&hub_config, batches);
        let hub_bridges = hub_config.hub_bridges();
        let indexed = run_steady(&hub, &cleanup_config, &hub_bridges, &schedule, reps, true);
        let rescan = run_steady(&hub, &cleanup_config, &hub_bridges, &schedule, reps, false);
        assert_eq!(
            indexed.final_edges, rescan.final_edges,
            "indexed and rescan steady cleanups diverged"
        );
        assert_eq!(
            (
                indexed.report.mincut_removed,
                indexed.report.betweenness_removed
            ),
            (
                rescan.report.mincut_removed,
                rescan.report.betweenness_removed
            ),
            "indexed and rescan steady cleanups removed different edge counts"
        );
        let steady_speedup = if indexed.steady_s > 0.0 {
            rescan.steady_s / indexed.steady_s
        } else {
            f64::INFINITY
        };
        println!(
            "hubbench: steady ({batches} batches) indexed {:.4}s vs rescan {:.4}s → \
             {steady_speedup:.1}x (cache hits {}, rescanned nodes {})",
            indexed.steady_s,
            rescan.steady_s,
            indexed.report.bridge_cache_hits,
            indexed.report.rescanned_nodes
        );
        (indexed, rescan, steady_speedup, batches)
    });

    // Gated section: seconds, bigger = worse. Default is the new path;
    // `--mode reference` injects the sequential full-recompute numbers and
    // `--mode rescan` injects the un-indexed steady timing, so CI can
    // prove the gate catches either fallback.
    let gated = match mode {
        "reference" => &reference_run,
        _ => &new_run,
    };
    let mut cleanup_fields = vec![
        ("hub_bootstrap_s", gated.bootstrap_s.to_json()),
        ("hub_churn_s", gated.churn_s.to_json()),
    ];
    if let Some((indexed, rescan, _, _)) = &steady_runs {
        let gated_steady = match mode {
            "rescan" => rescan.steady_s,
            _ => indexed.steady_s,
        };
        cleanup_fields.push(("hub_steady_s", gated_steady.to_json()));
    }
    let cleanup = Json::obj(cleanup_fields);
    let mut cleanup_info = Json::obj([
        ("mode", Json::Str(mode.to_string())),
        ("speedup_vs_reference", speedup.to_json()),
        ("new_bootstrap_s", new_run.bootstrap_s.to_json()),
        ("new_churn_s", new_run.churn_s.to_json()),
        ("reference_bootstrap_s", reference_run.bootstrap_s.to_json()),
        ("reference_churn_s", reference_run.churn_s.to_json()),
        ("reps", (reps as f64).to_json()),
        ("nodes", (hub.num_nodes as f64).to_json()),
        (
            "mega_component_size",
            (hub.mega_component_size as f64).to_json(),
        ),
        (
            "bootstrap_edges",
            (hub.bootstrap_edges.len() as f64).to_json(),
        ),
        ("churn_batches", (hub.churn_batches.len() as f64).to_json()),
        (
            "new_mincut_removed",
            (new_run.report.mincut_removed as f64).to_json(),
        ),
        (
            "new_betweenness_removed",
            (new_run.report.betweenness_removed as f64).to_json(),
        ),
    ]);
    if let (Some((indexed, rescan, steady_speedup, batches)), Json::Obj(fields)) =
        (&steady_runs, &mut cleanup_info)
    {
        fields.extend([
            (
                "steady_speedup_vs_rescan".to_string(),
                steady_speedup.to_json(),
            ),
            ("indexed_steady_s".to_string(), indexed.steady_s.to_json()),
            ("rescan_steady_s".to_string(), rescan.steady_s.to_json()),
            ("steady_batches".to_string(), (*batches as f64).to_json()),
            (
                "steady_bridge_cache_hits".to_string(),
                (indexed.report.bridge_cache_hits as f64).to_json(),
            ),
            (
                "steady_rescanned_nodes".to_string(),
                (indexed.report.rescanned_nodes as f64).to_json(),
            ),
        ]);
    }
    write_report(&out_path, cli.value("merge-into"), cleanup, cleanup_info);

    // Correctness backstop: every path must leave every component ≤ μ.
    let mut runs = vec![
        ("new", new_run.largest_after),
        ("reference", reference_run.largest_after),
    ];
    if let Some((indexed, rescan, _, _)) = &steady_runs {
        runs.push(("steady-indexed", indexed.largest_after));
        runs.push(("steady-rescan", rescan.largest_after));
    }
    for (name, largest_after) in runs {
        if largest_after > hub_config.group_size {
            eprintln!(
                "hubbench: FAILED — {name} cleanup left a component of {largest_after} (> μ = {})",
                hub_config.group_size
            );
            std::process::exit(1);
        }
    }
    if speedup < min_speedup {
        eprintln!(
            "hubbench: FAILED — new cleanup only {speedup:.2}x the sequential full-recompute \
             reference (expected ≥ {min_speedup}x)"
        );
        std::process::exit(1);
    }
    if let Some((_, _, steady_speedup, _)) = &steady_runs {
        if *steady_speedup < min_steady_speedup {
            eprintln!(
                "hubbench: FAILED — indexed steady cleanup only {steady_speedup:.2}x the rescan \
                 path (expected ≥ {min_steady_speedup}x)"
            );
            std::process::exit(1);
        }
        println!("hubbench steady ok: {steady_speedup:.1}x over rescan");
    }
    println!("hubbench ok: {speedup:.1}x over reference → {out_path}");
}

/// Write the standalone report, and optionally merge the two cleanup
/// sections into an existing repro report (replacing prior ones).
fn write_report(out_path: &str, merge_into: Option<&str>, cleanup: Json, cleanup_info: Json) {
    let report = Json::obj([
        ("cleanup", cleanup.clone()),
        ("cleanup_info", cleanup_info.clone()),
    ]);
    std::fs::write(out_path, report.to_pretty_string()).expect("write hubbench report");
    let Some(path) = merge_into else { return };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let mut target = Json::parse(&text).unwrap_or_else(|e| panic!("{path}: {}", e.message));
    let Json::Obj(fields) = &mut target else {
        panic!("{path} is not a JSON object");
    };
    fields.retain(|(key, _)| key != "cleanup" && key != "cleanup_info");
    fields.push(("cleanup".to_string(), cleanup));
    fields.push(("cleanup_info".to_string(), cleanup_info));
    std::fs::write(path, target.to_pretty_string()).expect("write merged report");
    eprintln!("hubbench: merged cleanup sections into {path}");
}
