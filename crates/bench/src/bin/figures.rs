//! Scenario reproductions of the paper's illustrative figures.
//!
//! * **Figure 2** — a 4-source mini-dataset with collision names
//!   (Crowdstrike/Crowdstreet), a merger, and an acquisition.
//! * **Figure 3** — transitive matches implied by a pairwise chain.
//! * **Figure 4** — a false-positive bridge between two groups, removed by
//!   the GraLMatch Graph Cleanup.
//!
//! Usage: `cargo run -p gralmatch-bench --bin figures --release`

use gralmatch_core::{
    entity_groups, graph_cleanup, group_metrics, prediction_graph, CleanupConfig,
};
use gralmatch_graph::connected_components;
use gralmatch_records::{EntityId, GroundTruth, RecordId, RecordPair};

fn pair(a: u32, b: u32) -> RecordPair {
    RecordPair::new(RecordId(a), RecordId(b))
}

fn figure2() {
    println!("=== Figure 2: the matching challenges ===");
    println!("Records #12, #22, #31, #40 are Crowdstrike across 4 sources;");
    println!("#13, #23, #32 are Crowdstreet. ID overlap links (#12,#31) and");
    println!("(#22,#40); matching the whole group needs text alignment, which");
    println!("risks the Crowdstrike-Crowdstreet false positive.\n");
    let names = [
        (12, "Crowdstrike Plt.", "crowdstrike"),
        (22, "Crowd Strike Platforms", "crowdstrike"),
        (31, "Crowdstrike Holdings", "crowdstrike"),
        (40, "CROWDSTRIKE", "crowdstrike"),
        (13, "Crowdstreet Inc.", "crowdstreet"),
        (23, "CrowdStreet", "crowdstreet"),
        (32, "Crowdstreet Marketplace", "crowdstreet"),
    ];
    for (id, name, entity) in names {
        println!("  #{id}: {name:<26} (entity: {entity})");
    }
    println!();
}

fn figure3() {
    println!("=== Figure 3: transitive matches ===");
    // Records #11, #21, #33, #41; pairwise chain (#11-#21), (#21-#33), (#33-#41).
    let predicted = [pair(11, 21), pair(21, 33), pair(33, 41)];
    let graph = prediction_graph(42, &predicted);
    let components = connected_components(&graph);
    let group = components
        .iter()
        .find(|c| c.len() == 4)
        .expect("chain group");
    println!("pairwise predictions: (#11,#21) (#21,#33) (#33,#41)");
    let mut implied = Vec::new();
    for i in 0..group.len() {
        for j in (i + 1)..group.len() {
            let candidate = pair(group[i], group[j]);
            if !predicted.contains(&candidate) {
                implied.push(candidate);
            }
        }
    }
    println!(
        "implied transitive matches: {}",
        implied
            .iter()
            .map(|p| format!("(#{},#{})", p.a.0, p.b.0))
            .collect::<Vec<_>>()
            .join(" ")
    );
    assert_eq!(
        implied.len(),
        3,
        "the figure shows exactly 3 implied matches"
    );
    println!();
}

fn figure4() {
    println!("=== Figure 4: pre vs post graph cleanup ===");
    // Two groups: Crowdstrike {0,1,2,3} and Crowdstreet {4,5,6}, densely
    // matched within, plus the false positive #40-#13 modeled as (3,4).
    let gt = GroundTruth::from_assignments(
        (0..4)
            .map(|r| (RecordId(r), EntityId(1)))
            .chain((4..7).map(|r| (RecordId(r), EntityId(2)))),
    );
    let mut predicted = vec![
        pair(0, 1),
        pair(0, 2),
        pair(1, 2),
        pair(2, 3),
        pair(4, 5),
        pair(5, 6),
        pair(4, 6),
        // the false positive bridge:
        pair(3, 4),
    ];
    predicted.sort_unstable();
    let mut graph = prediction_graph(7, &predicted);

    let pre_groups = entity_groups(&graph);
    let pre = group_metrics(&pre_groups, &gt);
    println!(
        "(1) pairwise: 8 predictions, 1 false positive (#3,#4)\n(2) pre-cleanup: one merged component of 7 records -> precision {:.2}, cluster purity {:.2}",
        pre.pairs.precision, pre.cluster_purity
    );

    let report = graph_cleanup(&mut graph, &CleanupConfig::new(6, 4));
    let post_groups = entity_groups(&graph);
    let post = group_metrics(&post_groups, &gt);
    println!(
        "(3) post-cleanup: removed {} edge(s) -> {} groups, precision {:.2}, cluster purity {:.2}",
        report.mincut_removed + report.betweenness_removed,
        post_groups.len(),
        post.pairs.precision,
        post.cluster_purity
    );
    assert!(!graph.has_edge(3, 4), "the bridge must be removed");
    assert_eq!(post.pairs.precision, 1.0);
    println!("the false pairwise match (#3,#4) was eliminated by GraLMatch.\n");
}

fn main() {
    figure2();
    figure3();
    figure4();
    println!("All figure invariants hold.");
}
