//! Regenerates Table 3: fine-tuning precision/recall/F1 on test pairs.
//!
//! Usage: `cargo run -p gralmatch-bench --bin table3 --release`
//! Runs every (dataset, model) cell of the paper's Table 3; cells print
//! `paper / measured`. Absolute values differ (our matcher is a linear
//! hashed-feature model, not a GPU transformer) but the orderings the paper
//! argues from — DITTO(128) collapsing on identifier-heavy securities,
//! the -15K variant trading recall for precision — should reproduce.

use gralmatch_bench::harness::{
    evaluate_on_test_pairs, prepare_real_sim, prepare_synthetic, prepare_wdc, train_spec,
    train_spec_with_pool, wdc_negative_pool, Scale,
};
use gralmatch_bench::paper::table3_reference;
use gralmatch_bench::table::{render, versus};
use gralmatch_lm::ModelSpec;
use gralmatch_util::format_duration;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    println!("Table 3 — fine-tuning scores (scale factor {})", scale.0);
    println!("Cells are `paper / measured` percentages.\n");

    let synthetic = prepare_synthetic(scale);
    let real = prepare_real_sim();
    let wdc = prepare_wdc();

    let mut rows: Vec<Vec<String>> = Vec::new();

    let run_cell = |dataset_label: &str,
                    records_kind: DatasetKind<'_>,
                    spec: ModelSpec,
                    rows: &mut Vec<Vec<String>>| {
        let (eval, secs) = match records_kind {
            DatasetKind::Companies(prepared) => {
                let (matcher, report) = train_spec(
                    prepared.data.companies.records(),
                    &prepared.company_gt,
                    &prepared.company_split,
                    spec,
                );
                (
                    evaluate_on_test_pairs(
                        prepared.data.companies.records(),
                        &matcher,
                        spec,
                        &prepared.company_gt,
                        &prepared.company_split,
                        7,
                        None,
                    ),
                    report.train_seconds,
                )
            }
            DatasetKind::Securities(prepared) => {
                let (matcher, report) = train_spec(
                    prepared.data.securities.records(),
                    &prepared.security_gt,
                    &prepared.security_split,
                    spec,
                );
                (
                    evaluate_on_test_pairs(
                        prepared.data.securities.records(),
                        &matcher,
                        spec,
                        &prepared.security_gt,
                        &prepared.security_split,
                        7,
                        None,
                    ),
                    report.train_seconds,
                )
            }
            DatasetKind::Products(prepared) => {
                // WDC protocol: hard corner-case negatives in train AND eval.
                let pool = wdc_negative_pool(prepared);
                let (matcher, report) = train_spec_with_pool(
                    prepared.products.records(),
                    &prepared.gt,
                    &prepared.split,
                    spec,
                    &pool,
                );
                (
                    evaluate_on_test_pairs(
                        prepared.products.records(),
                        &matcher,
                        spec,
                        &prepared.gt,
                        &prepared.split,
                        7,
                        Some(&pool),
                    ),
                    report.train_seconds,
                )
            }
        };
        let reference = table3_reference(dataset_label, spec.display_name());
        let (paper_precision, paper_recall, paper_f1) = reference
            .map_or((f64::NAN, f64::NAN, f64::NAN), |r| {
                (r.precision, r.recall, r.f1)
            });
        rows.push(vec![
            dataset_label.to_string(),
            spec.display_name().to_string(),
            versus(paper_precision, eval.precision),
            versus(paper_recall, eval.recall),
            versus(paper_f1, eval.f1),
            format_duration(Duration::from_secs_f64(secs)),
        ]);
        eprintln!("  done: {dataset_label} / {}", spec.display_name());
    };

    enum DatasetKind<'a> {
        Companies(&'a gralmatch_bench::harness::PreparedFinancial),
        Securities(&'a gralmatch_bench::harness::PreparedFinancial),
        Products(&'a gralmatch_bench::harness::PreparedWdc),
    }

    // The paper's row list: -15K only on the synthetic datasets.
    for spec in [
        ModelSpec::Ditto128,
        ModelSpec::Ditto256,
        ModelSpec::DistilBert128All,
    ] {
        run_cell(
            "Real Companies",
            DatasetKind::Companies(&real),
            spec,
            &mut rows,
        );
    }
    for spec in ModelSpec::ALL {
        run_cell(
            "Synthetic Companies",
            DatasetKind::Companies(&synthetic),
            spec,
            &mut rows,
        );
    }
    for spec in [
        ModelSpec::Ditto128,
        ModelSpec::Ditto256,
        ModelSpec::DistilBert128All,
    ] {
        run_cell(
            "Real Securities",
            DatasetKind::Securities(&real),
            spec,
            &mut rows,
        );
    }
    for spec in ModelSpec::ALL {
        run_cell(
            "Synthetic Securities",
            DatasetKind::Securities(&synthetic),
            spec,
            &mut rows,
        );
    }
    for spec in [
        ModelSpec::Ditto128,
        ModelSpec::Ditto256,
        ModelSpec::DistilBert128All,
    ] {
        run_cell("WDC Products", DatasetKind::Products(&wdc), spec, &mut rows);
    }

    println!(
        "{}",
        render(
            &[
                "Dataset",
                "Model",
                "Precision",
                "Recall",
                "F1 Score",
                "Training Time"
            ],
            &rows,
        )
    );
    println!("Paper training times (18–122 h) are GPU fine-tunes of real");
    println!("transformers; ours is a linear model on CPU — compare shapes, not times.");
}
