//! Regenerates Table 2: blockings, record counts, candidate pairs, γ/μ.
//!
//! Usage: `cargo run -p gralmatch-bench --bin table2 --release`
//! The paper's record counts are the *test splits* of the full datasets;
//! candidate-pair counts are scaled by the factor for comparison.

use gralmatch_bench::harness::{
    company_test_universe, heuristic_company_groups, prepare_real_sim, prepare_synthetic,
    prepare_wdc, security_test_universe, Scale,
};
use gralmatch_bench::paper::TABLE2;
use gralmatch_bench::table::render;
use gralmatch_core::{blocked_candidates, CompanyDomain, ProductDomain, SecurityDomain};
use gralmatch_records::{GroundTruth, ProductRecord, Record, RecordId};

fn fmt_count(value: f64) -> String {
    if value >= 1_000_000.0 {
        format!("{:.2}M", value / 1e6)
    } else if value >= 1_000.0 {
        format!("{:.1}K", value / 1e3)
    } else {
        format!("{value:.0}")
    }
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table 2 — blockings and candidate pairs (scale factor {})",
        scale.0
    );
    println!("Record/pair cells are `paper (scaled where applicable) / measured`.\n");

    let synthetic = prepare_synthetic(scale);
    let real = prepare_real_sim();
    let wdc = prepare_wdc();

    let mut rows = Vec::new();
    let mut push_row = |label: &str, records: usize, candidates: usize, scaled: bool| {
        let paper = TABLE2.iter().find(|r| r.dataset == label).expect("known");
        let factor = if scaled { scale.0 } else { 1.0 };
        rows.push(vec![
            label.to_string(),
            paper.blockings.to_string(),
            format!(
                "{} / {}",
                fmt_count(paper.records * factor),
                fmt_count(records as f64)
            ),
            format!(
                "{} / {}",
                fmt_count(paper.candidate_pairs * factor),
                fmt_count(candidates as f64)
            ),
            paper.gamma.to_string(),
            paper.mu.to_string(),
        ]);
    };

    // Synthetic companies (test split).
    {
        let (companies, securities) = company_test_universe(&synthetic);
        let candidates = blocked_candidates(&CompanyDomain::new(&companies, &securities));
        push_row(
            "Synthetic Companies",
            companies.len(),
            candidates.len(),
            true,
        );
    }
    // Synthetic securities (test split).
    {
        let (companies, securities) = security_test_universe(&synthetic);
        let groups = heuristic_company_groups(&companies, &securities);
        let candidates = blocked_candidates(&SecurityDomain::new(&securities, &groups));
        push_row(
            "Synthetic Securities",
            securities.len(),
            candidates.len(),
            true,
        );
    }
    // Real companies / securities (fixed-size simulator; not scaled).
    {
        let (companies, securities) = company_test_universe(&real);
        let candidates = blocked_candidates(&CompanyDomain::new(&companies, &securities));
        push_row("Real Companies", companies.len(), candidates.len(), false);
        let (companies, securities) = security_test_universe(&real);
        let groups = heuristic_company_groups(&companies, &securities);
        let candidates = blocked_candidates(&SecurityDomain::new(&securities, &groups));
        push_row("Real Securities", securities.len(), candidates.len(), false);
    }
    // WDC products (test split, unscaled).
    {
        let keep = wdc.split.test_set();
        let mut test_products: Vec<ProductRecord> = Vec::new();
        for product in wdc.products.records() {
            if keep.contains(&product.id()) {
                let mut cloned = product.clone();
                cloned.id = RecordId(test_products.len() as u32);
                test_products.push(cloned);
            }
        }
        let candidates = blocked_candidates(&ProductDomain::new(&test_products));
        let _ = GroundTruth::from_records(&test_products);
        push_row("WDC Products", test_products.len(), candidates.len(), false);
    }

    println!(
        "{}",
        render(
            &[
                "Dataset",
                "Blockings",
                "# Records",
                "# Candidate Pairs",
                "γ",
                "μ"
            ],
            &rows,
        )
    );
    println!("Note: the real-subset simulator is sized to the paper's labeled subset");
    println!("(6.3K companies / 12.8K securities in its test universe at full size);");
    println!("its row is not scaled by GRALMATCH_SCALE.");
}
