//! Runs the full reproduction (Tables 1–4 + figures) and writes a combined
//! JSON report next to the printed tables.
//!
//! Usage: `cargo run -p gralmatch-bench --bin repro --release [-- [--shards N] [--save-model DIR] [--load-model DIR] out.json]`
//!
//! `--shards N` (or `GRALMATCH_SHARDS`) runs every end-to-end experiment
//! through the engine under a multi-shard plan. `--save-model DIR`
//! persists every trained matcher as `SavedModel` JSON; `--load-model
//! DIR` skips training for models already present (bit-identical scores).

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::{
    prepare_real_sim, prepare_synthetic, prepare_wdc, run_companies_table4, run_securities_table4,
    run_wdc_table4, stage_trace_json, ModelStore, Scale,
};
use gralmatch_core::CleanupVariant;
use gralmatch_datagen::DatasetStats;
use gralmatch_lm::ModelSpec;
use gralmatch_util::{Json, ToJson};

fn main() {
    let scale = Scale::from_env();
    let cli = BenchCli::parse(&["shards", "save-model", "load-model"]);
    let shards = cli.shards_or(1);
    let store = ModelStore::from_cli(&cli);
    let out_path = cli.out_path("repro-report.json");
    eprintln!("repro: scale {} shards {shards} -> {}", scale.0, out_path);

    let synthetic = prepare_synthetic(scale);
    let real = prepare_real_sim();
    let wdc = prepare_wdc();

    let companies = DatasetStats::for_companies(&synthetic.data.companies);
    let securities = DatasetStats::for_securities(&synthetic.data.securities);

    let mut table4 = Vec::new();
    let mut record_cell =
        |dataset: &str, model: &str, cell: &gralmatch_bench::harness::Table4Cell| {
            eprintln!("repro: {dataset} / {model}");
            let stages = Json::Obj(
                cell.outcome
                    .trace
                    .stages
                    .iter()
                    .map(|stage| (stage.stage.to_string(), stage_trace_json(stage)))
                    .collect(),
            );
            // Per-recipe blocking lines: shape-stable (zero-candidate
            // recipes still report), so the perf gate can diff them.
            let recipes = Json::Obj(
                cell.outcome
                    .blocker_runs
                    .iter()
                    .map(|run| {
                        (
                            run.name.to_string(),
                            Json::obj([
                                ("seconds", run.seconds.to_json()),
                                ("candidates", run.candidates.to_json()),
                            ]),
                        )
                    })
                    .collect(),
            );
            table4.push(Json::obj([
                ("dataset", dataset.to_json()),
                ("model", model.to_json()),
                ("records", cell.num_records.to_json()),
                ("candidates", cell.outcome.num_candidates.to_json()),
                (
                    "pairwise",
                    Json::obj([
                        ("precision", cell.outcome.pairwise.precision.to_json()),
                        ("recall", cell.outcome.pairwise.recall.to_json()),
                        ("f1", cell.outcome.pairwise.f1.to_json()),
                    ]),
                ),
                (
                    "pre_cleanup",
                    Json::obj([
                        (
                            "precision",
                            cell.outcome.pre_cleanup.pairs.precision.to_json(),
                        ),
                        ("recall", cell.outcome.pre_cleanup.pairs.recall.to_json()),
                        ("f1", cell.outcome.pre_cleanup.pairs.f1.to_json()),
                        (
                            "cluster_purity",
                            cell.outcome.pre_cleanup.cluster_purity.to_json(),
                        ),
                    ]),
                ),
                (
                    "post_cleanup",
                    Json::obj([
                        (
                            "precision",
                            cell.outcome.post_cleanup.pairs.precision.to_json(),
                        ),
                        ("recall", cell.outcome.post_cleanup.pairs.recall.to_json()),
                        ("f1", cell.outcome.post_cleanup.pairs.f1.to_json()),
                        (
                            "cluster_purity",
                            cell.outcome.post_cleanup.cluster_purity.to_json(),
                        ),
                    ]),
                ),
                ("stages", stages),
                ("recipes", recipes),
                (
                    "inference_seconds",
                    cell.outcome.inference_seconds().to_json(),
                ),
                ("train_seconds", cell.train_seconds.to_json()),
            ]));
        };

    for spec in [ModelSpec::Ditto128, ModelSpec::DistilBert128All] {
        let cell = run_companies_table4(
            &real,
            spec,
            40,
            8,
            CleanupVariant::Full,
            shards,
            &store,
            "real",
        );
        record_cell("Real Companies", spec.display_name(), &cell);
    }
    for spec in ModelSpec::ALL {
        let cell = run_companies_table4(
            &synthetic,
            spec,
            25,
            5,
            CleanupVariant::Full,
            shards,
            &store,
            "synthetic",
        );
        record_cell("Synthetic Companies", spec.display_name(), &cell);
    }
    for spec in [ModelSpec::Ditto128, ModelSpec::DistilBert128All] {
        let cell = run_securities_table4(&real, spec, 40, 8, shards, &store, "real");
        record_cell("Real Securities", spec.display_name(), &cell);
    }
    for spec in ModelSpec::ALL {
        let cell = run_securities_table4(&synthetic, spec, 25, 5, shards, &store, "synthetic");
        record_cell("Synthetic Securities", spec.display_name(), &cell);
    }
    for spec in [ModelSpec::Ditto128, ModelSpec::DistilBert128All] {
        let cell = run_wdc_table4(&wdc, spec, 25, 5, shards, &store);
        record_cell("WDC Products", spec.display_name(), &cell);
    }

    let report = Json::obj([
        ("scale", scale.0.to_json()),
        ("shards", shards.to_json()),
        (
            "table1",
            Json::obj([
                (
                    "synthetic_companies",
                    Json::obj([
                        ("sources", companies.num_sources.to_json()),
                        ("entities", companies.num_entities.to_json()),
                        ("records", companies.num_records.to_json()),
                        ("matches", companies.num_matches.to_json()),
                        (
                            "avg_matches_per_entity",
                            companies.avg_matches_per_entity.to_json(),
                        ),
                        (
                            "pct_with_descriptions",
                            companies.pct_with_descriptions.to_json(),
                        ),
                    ]),
                ),
                (
                    "synthetic_securities",
                    Json::obj([
                        ("sources", securities.num_sources.to_json()),
                        ("entities", securities.num_entities.to_json()),
                        ("records", securities.num_records.to_json()),
                        ("matches", securities.num_matches.to_json()),
                        (
                            "avg_matches_per_entity",
                            securities.avg_matches_per_entity.to_json(),
                        ),
                    ]),
                ),
            ]),
        ),
        ("table4", Json::Arr(table4)),
    ]);
    std::fs::write(&out_path, report.to_pretty_string()).expect("write report");
    println!("wrote {out_path}");
}
