//! Runs the full reproduction (Tables 1–4 + figures) and writes a combined
//! JSON report next to the printed tables.
//!
//! Usage: `cargo run -p gralmatch-bench --bin repro --release [-- out.json]`

use gralmatch_bench::harness::{
    prepare_real_sim, prepare_synthetic, prepare_wdc, run_companies_table4,
    run_securities_table4, run_wdc_table4, Scale,
};
use gralmatch_core::CleanupVariant;
use gralmatch_datagen::DatasetStats;
use gralmatch_lm::ModelSpec;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "repro-report.json".into());
    eprintln!("repro: scale {} -> {}", scale.0, out_path);

    let synthetic = prepare_synthetic(scale);
    let real = prepare_real_sim();
    let wdc = prepare_wdc();

    let companies = DatasetStats::for_companies(&synthetic.data.companies);
    let securities = DatasetStats::for_securities(&synthetic.data.securities);

    let mut table4 = Vec::new();
    let mut record_cell = |dataset: &str, model: &str, cell: &gralmatch_bench::harness::Table4Cell| {
        eprintln!("repro: {dataset} / {model}");
        table4.push(json!({
            "dataset": dataset,
            "model": model,
            "records": cell.num_records,
            "candidates": cell.outcome.num_candidates,
            "pairwise": {
                "precision": cell.outcome.pairwise.precision,
                "recall": cell.outcome.pairwise.recall,
                "f1": cell.outcome.pairwise.f1,
            },
            "pre_cleanup": {
                "precision": cell.outcome.pre_cleanup.pairs.precision,
                "recall": cell.outcome.pre_cleanup.pairs.recall,
                "f1": cell.outcome.pre_cleanup.pairs.f1,
                "cluster_purity": cell.outcome.pre_cleanup.cluster_purity,
            },
            "post_cleanup": {
                "precision": cell.outcome.post_cleanup.pairs.precision,
                "recall": cell.outcome.post_cleanup.pairs.recall,
                "f1": cell.outcome.post_cleanup.pairs.f1,
                "cluster_purity": cell.outcome.post_cleanup.cluster_purity,
            },
            "inference_seconds": cell.outcome.inference_seconds,
            "train_seconds": cell.train_seconds,
        }));
    };

    for spec in [ModelSpec::Ditto128, ModelSpec::DistilBert128All] {
        let cell = run_companies_table4(&real, spec, 40, 8, CleanupVariant::Full);
        record_cell("Real Companies", spec.display_name(), &cell);
    }
    for spec in ModelSpec::ALL {
        let cell = run_companies_table4(&synthetic, spec, 25, 5, CleanupVariant::Full);
        record_cell("Synthetic Companies", spec.display_name(), &cell);
    }
    for spec in [ModelSpec::Ditto128, ModelSpec::DistilBert128All] {
        let cell = run_securities_table4(&real, spec, 40, 8);
        record_cell("Real Securities", spec.display_name(), &cell);
    }
    for spec in ModelSpec::ALL {
        let cell = run_securities_table4(&synthetic, spec, 25, 5);
        record_cell("Synthetic Securities", spec.display_name(), &cell);
    }
    for spec in [ModelSpec::Ditto128, ModelSpec::DistilBert128All] {
        let cell = run_wdc_table4(&wdc, spec, 25, 5);
        record_cell("WDC Products", spec.display_name(), &cell);
    }

    let report = json!({
        "scale": scale.0,
        "table1": {
            "synthetic_companies": {
                "sources": companies.num_sources,
                "entities": companies.num_entities,
                "records": companies.num_records,
                "matches": companies.num_matches,
                "avg_matches_per_entity": companies.avg_matches_per_entity,
                "pct_with_descriptions": companies.pct_with_descriptions,
            },
            "synthetic_securities": {
                "sources": securities.num_sources,
                "entities": securities.num_entities,
                "records": securities.num_records,
                "matches": securities.num_matches,
                "avg_matches_per_entity": securities.avg_matches_per_entity,
            },
        },
        "table4": table4,
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&report).expect("serialize"))
        .expect("write report");
    println!("wrote {out_path}");
}
