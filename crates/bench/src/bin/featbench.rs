//! Featurization microbenchmark: reference (set-based) vs compiled
//! (interned sorted-merge) pair featurization.
//!
//! Usage:
//! `cargo run -p gralmatch-bench --bin featbench --release -- [out.json]`
//!
//! `GRALMATCH_SCALE` sizes the dataset (default 0.02). The binary reports
//! pairs/sec for both paths, the one-time compile cost and arena footprint
//! (how many pairs it takes to amortize the compile), and a bit-identity
//! parity check — the compiled path must be an optimization, never a
//! semantic change.

use gralmatch_bench::cli::BenchCli;
use gralmatch_bench::harness::{prepare_synthetic, Scale};
use gralmatch_lm::{
    featurize, CompiledDataset, FeatureConfig, FeatureScratch, ModelSpec, PairFeatures,
};
use gralmatch_records::{RecordId, RecordPair};
use gralmatch_util::{Json, Stopwatch, ToJson};
use std::hint::black_box;

/// Run `f` over the pair list repeatedly until the clock budget is spent
/// (at least one full pass), returning pairs/second.
fn throughput(pairs: &[RecordPair], mut f: impl FnMut(RecordPair)) -> f64 {
    const BUDGET_SECONDS: f64 = 0.5;
    let watch = Stopwatch::start();
    let mut scored = 0usize;
    loop {
        for &pair in pairs {
            f(pair);
        }
        scored += pairs.len();
        if watch.elapsed_secs() >= BUDGET_SECONDS {
            break;
        }
    }
    scored as f64 / watch.elapsed_secs()
}

fn main() {
    let scale = Scale::from_env();
    let out_path = BenchCli::parse(&[]).out_path("featbench-report.json");
    eprintln!("featbench: scale {} -> {out_path}", scale.0);

    let prepared = prepare_synthetic(scale);
    let securities = prepared.data.securities.records();
    let encoded = ModelSpec::DistilBert128All.encode_records(securities);
    let config = FeatureConfig::default();

    // A fixed mixed workload: adjacent pairs (often same-entity, feature
    // heavy) plus strided pairs (mostly disjoint records).
    let n = encoded.len() as u32;
    assert!(n >= 2, "dataset too small for a pair workload");
    let pairs: Vec<RecordPair> = (0..n - 1)
        .map(|i| RecordPair::new(RecordId(i), RecordId(i + 1)))
        .chain((0..n).filter_map(|i| {
            let j = (i * 7 + 13) % n;
            (i != j).then(|| RecordPair::new(RecordId(i), RecordId(j)))
        }))
        .collect();

    let compile_watch = Stopwatch::start();
    let compiled = CompiledDataset::compile(&encoded, &config);
    let compile_seconds = compile_watch.elapsed_secs();

    // Parity: the compiled path must be bit-for-bit the reference path.
    let parity = pairs.iter().take(2_000).all(|&pair| {
        let reference = featurize(
            &encoded[pair.a.0 as usize],
            &encoded[pair.b.0 as usize],
            &config,
        );
        let fast = compiled.featurize_pair(pair.a.0, pair.b.0);
        reference.indices == fast.indices
            && reference
                .values
                .iter()
                .zip(&fast.values)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    });
    // The parity check is a CI gate, not a statistic: a compiled path that
    // stops being bit-identical must fail the bench-smoke job, not write
    // `parity: false` into a report nobody diffs.
    assert!(
        parity,
        "compiled featurization diverged from the reference path"
    );

    let reference_pps = throughput(&pairs, |pair| {
        black_box(featurize(
            &encoded[pair.a.0 as usize],
            &encoded[pair.b.0 as usize],
            &config,
        ));
    });
    let mut scratch = FeatureScratch::default();
    let mut out = PairFeatures::default();
    let compiled_pps = throughput(&pairs, |pair| {
        compiled.featurize_into(pair.a.0, pair.b.0, &mut scratch, &mut out);
        black_box(&out);
    });
    let speedup = compiled_pps / reference_pps;
    // Pairs after which the one-time compile pays for itself.
    let break_even_pairs = if compiled_pps > reference_pps {
        (compile_seconds / (1.0 / reference_pps - 1.0 / compiled_pps)).ceil() as u64
    } else {
        u64::MAX
    };

    eprintln!(
        "featbench: {} records, {} pairs, {} symbols",
        encoded.len(),
        pairs.len(),
        compiled.num_symbols()
    );
    eprintln!(
        "featbench: compile {compile_seconds:.3}s, arena {:.1} MiB",
        compiled.arena_bytes() as f64 / (1024.0 * 1024.0)
    );
    eprintln!(
        "featbench: reference {reference_pps:.0} pairs/s, compiled {compiled_pps:.0} pairs/s \
         ({speedup:.1}x, break-even after {break_even_pairs} pairs, parity: {parity})"
    );

    let report = Json::obj([
        ("scale", scale.0.to_json()),
        ("records", encoded.len().to_json()),
        ("pairs", pairs.len().to_json()),
        ("num_symbols", compiled.num_symbols().to_json()),
        ("arena_bytes", compiled.arena_bytes().to_json()),
        ("compile_seconds", compile_seconds.to_json()),
        ("reference_pairs_per_sec", reference_pps.to_json()),
        ("compiled_pairs_per_sec", compiled_pps.to_json()),
        ("speedup", speedup.to_json()),
        ("break_even_pairs", break_even_pairs.to_json()),
        ("parity", parity.to_json()),
    ]);
    std::fs::write(&out_path, report.to_pretty_string()).expect("write report");
    println!("wrote {out_path}");
}
