//! Plain-text table rendering for the experiment binaries.

/// Render an aligned table with a header row.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            let width = widths.get(i).copied().unwrap_or(cell.len());
            for _ in cell.len()..width {
                out.push(' ');
            }
        }
        // Trim trailing spaces.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    fmt_row(&header_cells, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Format a percentage-style metric like the paper (two decimals).
pub fn pct(value: f64) -> String {
    format!("{:.2}", value * 100.0)
}

/// Format a `paper vs measured` cell.
pub fn versus(paper: f64, measured: f64) -> String {
    format!("{} / {}", pct(paper), pct(measured))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let out = render(
            &["model", "f1"],
            &[
                vec!["DITTO (128)".into(), "98.15".into()],
                vec!["x".into(), "1".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[2].contains("DITTO"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9815), "98.15");
        assert_eq!(versus(0.5, 0.25), "50.00 / 25.00");
    }
}
