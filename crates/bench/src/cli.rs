//! Shared CLI parsing for the bench binaries.
//!
//! Every binary in this crate takes the same small argument families —
//! `--shards N` (env fallback `GRALMATCH_SHARDS`), a scale factor from
//! `GRALMATCH_SCALE`, value flags like `--batches K` or `--save-model
//! DIR`, and positional output paths. [`BenchCli`] parses them once, with
//! one `--flag value` / `--flag=value` / repeated-flag convention, instead
//! of each binary hand-rolling its own `args()` loop.

use gralmatch_util::FxHashMap;

/// Parsed bench-binary arguments.
#[derive(Debug, Clone, Default)]
pub struct BenchCli {
    /// Flag → values in argv order (`--apply a --apply b` keeps both).
    values: FxHashMap<String, Vec<String>>,
    /// Boolean switches seen (`--steady`).
    switches: Vec<String>,
    /// Non-flag arguments in argv order.
    positional: Vec<String>,
}

impl BenchCli {
    /// Parse the process arguments. `value_flags` names the flags that
    /// consume a value (`--flag value` or `--flag=value`); anything else
    /// starting with `--` is rejected so a typo fails loudly instead of
    /// becoming an output path.
    pub fn parse(value_flags: &[&str]) -> Self {
        Self::parse_with_switches(value_flags, &[])
    }

    /// [`BenchCli::parse`] that also accepts boolean switches: `--flag`
    /// with no value, queried via [`BenchCli::switch`].
    pub fn parse_with_switches(value_flags: &[&str], switch_flags: &[&str]) -> Self {
        match Self::parse_from_with_switches(std::env::args().skip(1), value_flags, switch_flags) {
            Ok(cli) => cli,
            Err(message) => panic!("{message}"),
        }
    }

    /// [`BenchCli::parse`] over an explicit argument stream (testable).
    pub fn parse_from(
        args: impl IntoIterator<Item = String>,
        value_flags: &[&str],
    ) -> Result<Self, String> {
        Self::parse_from_with_switches(args, value_flags, &[])
    }

    /// [`BenchCli::parse_from`] with boolean switches.
    pub fn parse_from_with_switches(
        args: impl IntoIterator<Item = String>,
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Self, String> {
        let mut cli = BenchCli::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if let Some(rest) = arg.strip_prefix("--") {
                let (name, inline) = match rest.split_once('=') {
                    Some((name, value)) => (name.to_string(), Some(value.to_string())),
                    None => (rest.to_string(), None),
                };
                if switch_flags.contains(&name.as_str()) {
                    if inline.is_some() {
                        return Err(format!("--{name} is a switch and takes no value"));
                    }
                    if !cli.switches.contains(&name) {
                        cli.switches.push(name);
                    }
                    continue;
                }
                if !value_flags.contains(&name.as_str()) {
                    return Err(format!("unknown flag --{name}"));
                }
                let value = match inline {
                    Some(value) => value,
                    None => args
                        .next()
                        .ok_or_else(|| format!("--{name} needs a value"))?,
                };
                cli.values.entry(name).or_default().push(value);
            } else {
                cli.positional.push(arg);
            }
        }
        Ok(cli)
    }

    /// Whether a boolean switch was passed.
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|name| name == flag)
    }

    /// Last value of a flag.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values
            .get(flag)
            .and_then(|values| values.last())
            .map(String::as_str)
    }

    /// All values of a repeatable flag, in argv order.
    pub fn all(&self, flag: &str) -> &[String] {
        self.values.get(flag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Last value of a flag parsed as `usize`.
    pub fn usize_value(&self, flag: &str) -> Option<usize> {
        self.value(flag).map(|value| {
            value
                .parse()
                .unwrap_or_else(|_| panic!("--{flag} needs a number, got {value:?}"))
        })
    }

    /// The `--shards` knob with its `GRALMATCH_SHARDS` env fallback;
    /// `None` when neither is set (binaries pick their own default).
    pub fn shards(&self) -> Option<usize> {
        self.usize_value("shards")
            .or_else(|| {
                std::env::var("GRALMATCH_SHARDS")
                    .ok()
                    .and_then(|value| value.parse().ok())
            })
            .map(|shards: usize| shards.max(1))
    }

    /// [`BenchCli::shards`] with a binary-specific default.
    pub fn shards_or(&self, default: usize) -> usize {
        self.shards().unwrap_or(default)
    }

    /// First positional argument, or `default` — the output-path
    /// convention shared by the report-writing binaries.
    pub fn out_path(&self, default: &str) -> String {
        self.positional
            .first()
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Non-flag arguments in argv order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_value_flags_both_spellings_and_positionals() {
        let cli = BenchCli::parse_from(
            args(&["--shards", "4", "--batches=7", "out.json"]),
            &["shards", "batches"],
        )
        .unwrap();
        assert_eq!(cli.usize_value("shards"), Some(4));
        assert_eq!(cli.usize_value("batches"), Some(7));
        assert_eq!(cli.out_path("default.json"), "out.json");
        assert_eq!(cli.value("missing"), None);
    }

    #[test]
    fn repeatable_flags_keep_every_value() {
        let cli = BenchCli::parse_from(
            args(&["--apply", "a.json", "--apply", "b.json"]),
            &["apply"],
        )
        .unwrap();
        assert_eq!(
            cli.all("apply"),
            &["a.json".to_string(), "b.json".to_string()]
        );
        assert_eq!(cli.value("apply"), Some("b.json"));
    }

    #[test]
    fn unknown_and_valueless_flags_error() {
        assert!(BenchCli::parse_from(args(&["--bogus"]), &["shards"]).is_err());
        assert!(BenchCli::parse_from(args(&["--shards"]), &["shards"]).is_err());
    }

    #[test]
    fn switches_parse_without_values() {
        let cli = BenchCli::parse_from_with_switches(
            args(&["--steady", "--reps", "2", "out.json"]),
            &["reps"],
            &["steady"],
        )
        .unwrap();
        assert!(cli.switch("steady"));
        assert!(!cli.switch("reps"));
        assert_eq!(cli.usize_value("reps"), Some(2));
        assert_eq!(cli.out_path("default.json"), "out.json");
        // A switch with an inline value is a usage error.
        assert!(
            BenchCli::parse_from_with_switches(args(&["--steady=yes"]), &[], &["steady"]).is_err()
        );
    }

    #[test]
    fn out_path_falls_back_to_default() {
        let cli = BenchCli::parse_from(args(&[]), &[]).unwrap();
        assert_eq!(cli.out_path("report.json"), "report.json");
    }
}
