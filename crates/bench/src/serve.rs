//! The serve layer: a long-lived [`MatchEngine`] session over securities,
//! persisted to and resumed from disk.
//!
//! This is the ROADMAP's "serve-style binary" made concrete: a
//! [`ServeSession`] wraps an engine whose state round-trips through the
//! `PipelineState` JSON codec and whose matcher loads from a
//! [`SavedModel`] (falling back to the training-free heuristic matcher),
//! applies [`UpsertBatch`] streams, and answers group lookups through a
//! tiny line protocol:
//!
//! ```text
//! group_of <record-id>     → the record's group id + members
//! members <group-id>       → one group's members
//! stats                    → engine counters + snapshot epoch
//! apply <path>             → apply a batch file, print its latency trace
//! save_state <path>        → persist the standing state
//! {"inserts":[…],…}        → apply an inline JSON batch
//! ```
//!
//! Protocol lines parse into a [`ServeRequest`]; the read-only requests
//! (`group_of`/`members`/`stats`) are answered by [`lookup_response`]
//! against a [`GroupSnapshot`] — the same function serves both the
//! single-threaded [`ServeSession::command`] loop and the concurrent TCP
//! readers in [`crate::net`], so the two paths cannot drift.
//!
//! The `serve` binary is a thin CLI over this module (`bootstrap` builds
//! a state + delta-batch files from the synthetic benchmark; `run` loads
//! and serves); the smoke tests below drive the same session API the
//! binary uses.

use gralmatch_blocking::{Blocker, SecurityIdOverlap, TokenOverlap, TokenOverlapConfig};
use gralmatch_core::{
    CompiledScorerProvider, EngineStats, GroupSnapshot, MatchEngine, PipelineConfig, PipelineState,
    ScorerProvider, ShardPlan, UpsertBatch, UpsertOutcome,
};
use gralmatch_lm::{HeuristicMatcher, ModelSpec, SavedModel};
use gralmatch_records::{RecordId, SecurityRecord};
use gralmatch_util::{Error, FromJson, Json, ToJson};

/// The serve lineup: the cross-shard identifier hash join plus the
/// shard-local token-overlap recipe — self-contained (no companion
/// company grouping needed), and the same list must be used at bootstrap
/// and at serve time so incremental re-blocking reconciles against the
/// candidates the state was built with.
pub fn security_strategies() -> Vec<Box<dyn Blocker<SecurityRecord> + 'static>> {
    vec![
        Box::new(SecurityIdOverlap),
        Box::new(TokenOverlap::new(TokenOverlapConfig::default())),
    ]
}

/// The serve pipeline configuration (synthetic-benchmark γ/μ).
pub fn serve_config() -> PipelineConfig {
    PipelineConfig::new(25, 5)
}

/// Jaccard threshold of the fallback heuristic scorer — shared by
/// [`serve_provider`] and [`scorer_fingerprint`] so the mismatch guard
/// can never drift from the scorer it describes.
const SERVE_HEURISTIC_JACCARD: f32 = 0.45;

/// Scorer provider for a serve session: a compiled view over the loaded
/// [`SavedModel`]'s matcher + encoder, or the training-free heuristic
/// matcher when no model file is given.
pub fn serve_provider(
    model: Option<SavedModel>,
) -> Box<dyn ScorerProvider<SecurityRecord> + 'static> {
    match model {
        Some(saved) => Box::new(CompiledScorerProvider::new(
            saved.matcher,
            saved.spec.encoder(),
        )),
        None => Box::new(CompiledScorerProvider::new(
            HeuristicMatcher {
                jaccard_threshold: SERVE_HEURISTIC_JACCARD,
            },
            ModelSpec::DistilBert128All.encoder(),
        )),
    }
}

/// Identity of the scorer a state was built with — written next to the
/// state file at bootstrap and checked at resume, because standing
/// predictions scored under one matcher must not be reconciled against
/// pairs scored under another (the groups would silently mix regimes).
/// The digest covers the model's full canonical serialization (weights
/// included), so two same-shape models trained on different data do not
/// collide.
pub fn scorer_fingerprint(model: Option<&SavedModel>) -> String {
    match model {
        Some(saved) => format!(
            "saved-model spec={} digest={:016x}",
            saved.spec.key(),
            fnv1a(saved.to_json().to_compact_string().as_bytes())
        ),
        None => format!("heuristic jaccard={SERVE_HEURISTIC_JACCARD}"),
    }
}

/// FNV-1a over a byte stream (content digest for the scorer sidecar; not
/// cryptographic, just collision-resistant enough to catch a swapped
/// weight file).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One batch application's latency summary, for the per-batch trace the
/// serve binary prints.
pub fn latency_line(outcome: &UpsertOutcome, seconds: f64) -> String {
    use gralmatch_core::stage_names;
    let stage = |name: &str| outcome.trace.stage(name).map_or(0.0, |stage| stage.seconds);
    format!(
        "applied +{}~{}-{} in {seconds:.4}s (blocking {:.4}s, inference {:.4}s over {} pairs, \
         merge {:.4}s, {} components re-cleaned) → {} groups",
        outcome.inserted,
        outcome.updated,
        outcome.deleted,
        stage(stage_names::BLOCKING),
        stage(stage_names::INFERENCE),
        outcome.pairs_scored,
        stage(stage_names::MERGE),
        outcome.touched_components,
        outcome.groups.len(),
    )
}

/// One parsed protocol line. Read-only requests are answerable from a
/// [`GroupSnapshot`] alone (any thread, any epoch); the rest mutate the
/// engine and belong to the single writer.
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// `group_of <record-id>`
    GroupOf(RecordId),
    /// `members <group-id>`
    Members(RecordId),
    /// `stats`
    Stats,
    /// `apply <path>`
    ApplyFile(String),
    /// An inline `{"inserts":…}` batch.
    InlineBatch(UpsertBatch<SecurityRecord>),
    /// `save_state <path>`
    SaveState(String),
}

impl ServeRequest {
    /// Whether [`lookup_response`] can answer this request (no engine
    /// mutation needed).
    pub fn is_lookup(&self) -> bool {
        matches!(
            self,
            ServeRequest::GroupOf(_) | ServeRequest::Members(_) | ServeRequest::Stats
        )
    }
}

/// Parse one protocol line. `Ok(None)` is an empty line (no response);
/// `Err` is a usage message for the client — the connection or session
/// stays usable either way.
pub fn parse_request(line: &str) -> Result<Option<ServeRequest>, String> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    if line.starts_with('{') {
        let json = Json::parse(line).map_err(|e| format!("bad batch JSON: {}", e.message))?;
        let batch = UpsertBatch::<SecurityRecord>::from_json(&json)
            .map_err(|e| format!("bad batch: {}", e.message))?;
        return Ok(Some(ServeRequest::InlineBatch(batch)));
    }
    let mut parts = line.split_whitespace();
    match parts.next().unwrap_or_default() {
        "group_of" => Ok(Some(ServeRequest::GroupOf(RecordId(parse_id(
            parts.next(),
        )?)))),
        "members" => Ok(Some(ServeRequest::Members(RecordId(parse_id(
            parts.next(),
        )?)))),
        "stats" => Ok(Some(ServeRequest::Stats)),
        "apply" => Ok(Some(ServeRequest::ApplyFile(
            parts.next().ok_or("usage: apply <batch.json>")?.to_string(),
        ))),
        "save_state" => Ok(Some(ServeRequest::SaveState(
            parts
                .next()
                .ok_or("usage: save_state <state.json>")?
                .to_string(),
        ))),
        other => Err(format!(
            "unknown command {other:?} (try: group_of <id> | members <id> | stats | \
             apply <file> | save_state <file> | inline batch JSON)"
        )),
    }
}

/// Answer a read-only request from a snapshot (`None` when the request
/// mutates the engine and must go to the writer). Every response is one
/// line, internally consistent with the snapshot's epoch.
pub fn lookup_response(snapshot: &GroupSnapshot, request: &ServeRequest) -> Option<String> {
    match request {
        ServeRequest::GroupOf(id) => Some(match snapshot.group_of(*id) {
            Some(group) => {
                let members = snapshot
                    .group_members(group)
                    .expect("group id came from the snapshot");
                format!(
                    "record {} → group {} ({} member{}): {}",
                    id.0,
                    group.0,
                    members.len(),
                    if members.len() == 1 { "" } else { "s" },
                    render_members(members),
                )
            }
            None => format!("record {} is not live", id.0),
        }),
        ServeRequest::Members(id) => Some(match snapshot.group_members(*id) {
            Some(members) => format!("group {}: {}", id.0, render_members(members)),
            None => format!("{} is not a group id", id.0),
        }),
        ServeRequest::Stats => {
            let stats = snapshot.stats();
            Some(format!(
                "{} live records ({} ids), {} groups (largest {}), {} candidates, \
                 {} predictions, {} batches applied in {:.4}s, snapshot epoch {}",
                stats.num_live,
                stats.num_ids,
                stats.num_groups,
                stats.largest_group,
                stats.num_candidates,
                stats.num_predicted,
                stats.batches_applied,
                stats.total_apply_seconds,
                snapshot.epoch(),
            ))
        }
        _ => None,
    }
}

fn parse_id(token: Option<&str>) -> Result<u32, String> {
    token
        .ok_or("missing record id")?
        .parse()
        .map_err(|_| "record ids are unsigned integers".to_string())
}

fn render_members(members: &[RecordId]) -> String {
    const SHOWN: usize = 16;
    let mut rendered: Vec<String> = members
        .iter()
        .take(SHOWN)
        .map(|id| id.0.to_string())
        .collect();
    if members.len() > SHOWN {
        rendered.push(format!("… +{}", members.len() - SHOWN));
    }
    format!("[{}]", rendered.join(", "))
}

/// A live serve session: the engine plus the lookup protocol.
pub struct ServeSession {
    engine: MatchEngine<'static, SecurityRecord>,
}

impl ServeSession {
    /// Bootstrap a fresh session from records (one insert-only batch).
    pub fn bootstrap(
        records: Vec<SecurityRecord>,
        plan: ShardPlan,
        provider: Box<dyn ScorerProvider<SecurityRecord> + 'static>,
    ) -> Result<(Self, UpsertOutcome), Error> {
        let (engine, outcome) = MatchEngine::bootstrap(
            plan,
            records,
            security_strategies(),
            provider,
            serve_config(),
        )?;
        Ok((ServeSession { engine }, outcome))
    }

    /// Resume from a persisted state (JSON text of
    /// [`PipelineState::to_json`]).
    pub fn resume(
        state_json: &str,
        provider: Box<dyn ScorerProvider<SecurityRecord> + 'static>,
    ) -> Result<Self, Error> {
        let json = Json::parse(state_json).map_err(|e| Error::InvalidConfig(e.message))?;
        let state: PipelineState<SecurityRecord> =
            PipelineState::from_json(&json).map_err(|e| Error::InvalidConfig(e.message))?;
        Ok(ServeSession {
            engine: MatchEngine::from_state(state, security_strategies(), provider, serve_config()),
        })
    }

    /// Apply one batch, returning the outcome and its wall-clock seconds.
    pub fn apply(
        &mut self,
        batch: &UpsertBatch<SecurityRecord>,
    ) -> Result<(UpsertOutcome, f64), Error> {
        let watch = gralmatch_util::Stopwatch::start();
        let outcome = self.engine.apply_batch(batch)?;
        Ok((outcome, watch.elapsed_secs()))
    }

    /// The wrapped engine (lookups, stats).
    pub fn engine(&self) -> &MatchEngine<'static, SecurityRecord> {
        &self.engine
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Serialize the standing state.
    pub fn state_json(&self) -> String {
        self.engine.state().to_json().to_pretty_string()
    }

    /// Execute one protocol line (see the [module docs](self)), returning
    /// the response text. Unknown or malformed commands return `Err` with
    /// a usage message — the session stays usable.
    pub fn command(&mut self, line: &str) -> Result<String, String> {
        let Some(request) = parse_request(line)? else {
            return Ok(String::new());
        };
        self.execute(&request)
    }

    /// Execute one parsed request: lookups answer from the engine's
    /// current snapshot (the same path concurrent readers take), writes
    /// go through the engine.
    pub fn execute(&mut self, request: &ServeRequest) -> Result<String, String> {
        if let Some(response) = lookup_response(&self.engine.snapshot(), request) {
            return Ok(response);
        }
        match request {
            ServeRequest::InlineBatch(batch) => {
                let (outcome, seconds) = self
                    .apply(batch)
                    .map_err(|e| format!("apply failed: {e:?}"))?;
                Ok(latency_line(&outcome, seconds))
            }
            ServeRequest::ApplyFile(path) => {
                let batch = load_batch(path).map_err(|e| format!("{path}: {e:?}"))?;
                let (outcome, seconds) = self
                    .apply(&batch)
                    .map_err(|e| format!("apply failed: {e:?}"))?;
                Ok(latency_line(&outcome, seconds))
            }
            ServeRequest::SaveState(path) => {
                std::fs::write(path, self.state_json()).map_err(|e| format!("{path}: {e}"))?;
                Ok(format!("state saved to {path}"))
            }
            lookup => unreachable!("lookup request {lookup:?} not answered by snapshot"),
        }
    }
}

/// Read one [`UpsertBatch`] from a JSON file.
pub fn load_batch(path: &str) -> Result<UpsertBatch<SecurityRecord>, Error> {
    let text = std::fs::read_to_string(path).map_err(Error::Io)?;
    let json = Json::parse(&text).map_err(|e| Error::InvalidConfig(e.message))?;
    UpsertBatch::from_json(&json).map_err(|e| Error::InvalidConfig(e.message))
}

/// Write one [`UpsertBatch`] as a JSON file.
pub fn save_batch(path: &str, batch: &UpsertBatch<SecurityRecord>) -> Result<(), Error> {
    std::fs::write(path, batch.to_json().to_pretty_string()).map_err(Error::Io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_datagen::{generate, GenerationConfig};

    fn securities() -> Vec<SecurityRecord> {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 60;
        generate(&config).unwrap().securities.records().to_vec()
    }

    /// The satellite smoke: persist a bootstrapped state, resume it from
    /// JSON, apply a delete-bearing batch, and check the lookups reflect
    /// the re-cleaned components.
    #[test]
    fn resumed_session_reflects_delete_bearing_batches_in_lookups() {
        let records = securities();
        let (session, load) =
            ServeSession::bootstrap(records.clone(), ShardPlan::new(3), serve_provider(None))
                .unwrap();
        assert_eq!(load.inserted, records.len());
        let state = session.state_json();

        // Resume from disk-shaped state with a fresh provider.
        let mut resumed = ServeSession::resume(&state, serve_provider(None)).unwrap();
        assert_eq!(resumed.engine().groups(), session.engine().groups());

        // Delete one member of a multi-record group.
        let group = resumed
            .engine()
            .groups()
            .into_iter()
            .find(|group| group.len() > 1)
            .expect("some multi-record group");
        let victim = group[0];
        let survivors: Vec<RecordId> = group[1..].to_vec();
        let (outcome, _) = resumed
            .apply(&UpsertBatch {
                inserts: Vec::new(),
                updates: Vec::new(),
                deletes: vec![victim],
            })
            .unwrap();
        assert_eq!(outcome.deleted, 1);

        // The deleted id no longer resolves; the survivors' group was
        // re-cleaned and no longer contains it.
        assert_eq!(resumed.engine().group_of(victim), None);
        for &id in &survivors {
            let root = resumed.engine().group_of(id).expect("survivor stays live");
            let members = resumed.engine().group_members(root).unwrap();
            assert!(!members.contains(&victim), "lookup still sees deleted id");
        }
    }

    #[test]
    fn scorer_fingerprints_distinguish_models() {
        use gralmatch_lm::{FeatureConfig, LogisticModel, TrainedMatcher};
        assert_eq!(scorer_fingerprint(None), "heuristic jaccard=0.45");
        let matcher = TrainedMatcher::new(
            LogisticModel::new(FeatureConfig::default().dim()),
            FeatureConfig::default(),
        );
        let a = SavedModel::new(ModelSpec::Ditto128, matcher.clone());
        // Same shape, different parameters → different digest.
        let b = SavedModel::new(ModelSpec::Ditto128, matcher.with_threshold(0.7));
        assert_ne!(
            scorer_fingerprint(Some(&a)),
            scorer_fingerprint(Some(&b)),
            "fingerprint must cover model contents, not just its shape"
        );
    }

    #[test]
    fn command_protocol_round_trips() {
        let records = securities();
        let subset = records[..records.len() / 2].to_vec();
        let (mut session, _) =
            ServeSession::bootstrap(subset, ShardPlan::new(2), serve_provider(None)).unwrap();

        let stats = session.command("stats").unwrap();
        assert!(stats.contains("live records"), "{stats}");
        assert!(stats.contains("snapshot epoch 1"), "{stats}");
        let lookup = session.command("group_of 0").unwrap();
        assert!(lookup.contains("group"), "{lookup}");
        assert!(session.command("group_of notanid").is_err());
        assert!(session.command("bogus").is_err());
        assert_eq!(session.command("").unwrap(), "");
        // Malformed inline JSON is a protocol error, not a session killer.
        assert!(session.command("{not json").is_err());
        assert!(session.command("stats").is_ok());

        // Inline batch JSON: insert one held-out record, then look it up.
        let held_out = records.last().unwrap().clone();
        let id = held_out.id;
        let batch = UpsertBatch::inserting(vec![held_out]);
        let response = session
            .command(&batch.to_json().to_compact_string())
            .unwrap();
        assert!(response.contains("applied +1"), "{response}");
        let lookup = session.command(&format!("group_of {}", id.0)).unwrap();
        assert!(lookup.contains(&format!("record {}", id.0)), "{lookup}");
        // The batch bumped the epoch.
        let stats = session.command("stats").unwrap();
        assert!(stats.contains("snapshot epoch 2"), "{stats}");
    }

    /// Snapshot-served lookups and the session's command loop are the
    /// same code path — byte-identical responses for every read request.
    #[test]
    fn snapshot_lookups_match_session_responses() {
        let records = securities();
        let (mut session, _) =
            ServeSession::bootstrap(records, ShardPlan::new(2), serve_provider(None)).unwrap();
        let snapshot = session.engine().snapshot();
        let max_id = session.stats().num_ids as u32;
        for id in 0..max_id.min(64) {
            for line in [format!("group_of {id}"), format!("members {id}")] {
                let request = parse_request(&line).unwrap().unwrap();
                assert!(request.is_lookup());
                assert_eq!(
                    lookup_response(&snapshot, &request),
                    Some(session.command(&line).unwrap()),
                    "{line}"
                );
            }
        }
        let stats_request = parse_request("stats").unwrap().unwrap();
        assert_eq!(
            lookup_response(&snapshot, &stats_request).unwrap(),
            session.command("stats").unwrap()
        );
        // Write requests are not answerable from a snapshot.
        let write = parse_request("apply some.json").unwrap().unwrap();
        assert!(!write.is_lookup());
        assert_eq!(lookup_response(&snapshot, &write), None);
    }
}
