//! The serve layer: a multi-tenant [`EngineHost`] session behind a line
//! protocol, persisted to and resumed from disk.
//!
//! This is the ROADMAP's multi-tenant engine host made concrete: a
//! [`HostSession`] wraps an [`EngineHost`] of named, domain-erased
//! tenants (companies, securities, products — each an
//! [`EngineTenant`] whose state round-trips
//! through the `PipelineState` JSON codec and whose matcher loads from a
//! [`SavedModel`], falling back to the training-free heuristic), applies
//! [`UpsertBatch`] streams per tenant, and answers group lookups through
//! the line protocol documented in `docs/PROTOCOL.md`:
//!
//! ```text
//! hello                         → versioned banner (protocol-version=2)
//! ping / help / tenants         → liveness, usage, tenant listing
//! use <tenant>                  → set the connection's current tenant
//! [<tenant>.]group_of <id>      → the record's group id + members
//! [<tenant>.]members <id>       → one group's members
//! [<tenant>.]stats              → tenant counters + snapshot epoch
//! [<tenant>.]latency            → tenant batch-apply latency histogram
//! [<tenant>.]apply <path>       → apply a batch file, print its latency
//! [<tenant>.]save_state <path>  → persist state + scorer sidecar
//! [<tenant>.]checkpoint         → binary snapshot + WAL truncate (durable tenants)
//! model <tenant> <path>         → hot-swap the tenant's SavedModel
//! {"inserts":[…],…}             → apply an inline batch (current tenant)
//! ```
//!
//! Every failure is a **coded** error line — `error: <code>: <message>`
//! with a stable machine-parseable code ([`ErrorCode`]) — so clients can
//! distinguish an unknown record ([`ErrorCode::UnknownRecord`]) from an
//! unknown tenant ([`ErrorCode::UnknownTenant`]) from a parse failure.
//!
//! Protocol lines parse into a [`ServeRequest`]; snapshot-answerable
//! requests (`group_of`/`members`/`stats`) are answered by
//! [`lookup_response`] against a [`GroupSnapshot`] — the same function
//! serves both the single-threaded [`HostSession::command`] loop and the
//! concurrent TCP readers in [`crate::net`], so the two paths cannot
//! drift.
//!
//! The `serve` binary is a thin CLI over this module (`bootstrap` builds
//! per-domain states + delta-batch files; `run` hosts any number of
//! `--tenant` engines over stdin or TCP); the tests below drive the same
//! session API the binary uses.

use gralmatch_blocking::{Blocker, SecurityIdOverlap, TokenOverlap, TokenOverlapConfig};
use gralmatch_core::{
    model_fingerprint, persist, scorer_provider, CheckpointPolicy, EngineHost, EngineTenant,
    GroupSnapshot, HostError, MatchEngine, PipelineConfig, PipelineState, RecoveryReport,
    ShardPlan, TenantEngine, UpsertBatch, UpsertOutcome,
};
use gralmatch_lm::SavedModel;
use gralmatch_records::{CompanyRecord, ProductRecord, Record, RecordId, SecurityRecord};
use gralmatch_util::{BinRecord, Error, FromJson, Json, LatencyHistogram, ToJson};

/// The line-protocol version the `hello` banner reports. Bump when a
/// response format or command grammar changes incompatibly.
pub const PROTOCOL_VERSION: u32 = 2;

/// A record type servable as a tenant: its domain name (the fingerprint
/// namespace) plus its **serve blocking lineup** — self-contained
/// recipes only (no cross-domain borrows), because the same list must be
/// used at bootstrap and at every resume so incremental re-blocking
/// reconciles against the candidates the state was built with.
pub trait ServeDomain:
    Record + Clone + Send + Sync + ToJson + FromJson + BinRecord + Sized + 'static
{
    /// Domain name: `"companies"`, `"securities"`, or `"products"`.
    const DOMAIN: &'static str;

    /// The blocking lineup serve-time engines run under.
    fn serve_strategies() -> Vec<Box<dyn Blocker<Self> + 'static>>;
}

impl ServeDomain for SecurityRecord {
    const DOMAIN: &'static str = "securities";

    /// Cross-shard identifier hash join plus the shard-local
    /// token-overlap recipe.
    fn serve_strategies() -> Vec<Box<dyn Blocker<Self> + 'static>> {
        vec![
            Box::new(SecurityIdOverlap),
            Box::new(TokenOverlap::new(TokenOverlapConfig::default())),
        ]
    }
}

impl ServeDomain for CompanyRecord {
    const DOMAIN: &'static str = "companies";

    /// Token overlap only: the one-shot pipeline's `CompanyIdOverlap`
    /// joins companies through a borrowed securities slice, which a
    /// self-contained long-lived tenant cannot carry — the same
    /// serve-vs-paper lineup deviation the securities recipe already
    /// makes by dropping `IssuerMatch`.
    fn serve_strategies() -> Vec<Box<dyn Blocker<Self> + 'static>> {
        vec![Box::new(TokenOverlap::new(TokenOverlapConfig::default()))]
    }
}

impl ServeDomain for ProductRecord {
    const DOMAIN: &'static str = "products";

    /// Products match purely by text (WDC offers carry no id codes).
    fn serve_strategies() -> Vec<Box<dyn Blocker<Self> + 'static>> {
        vec![Box::new(TokenOverlap::new(TokenOverlapConfig::default()))]
    }
}

/// The serve pipeline configuration (synthetic-benchmark γ/μ), shared by
/// all tenants.
pub fn serve_config() -> PipelineConfig {
    PipelineConfig::new(25, 5)
}

/// Bootstrap a tenant engine from records (one insert-only batch) under
/// the domain's serve lineup, fingerprinted for `R::DOMAIN`.
pub fn bootstrap_tenant<R: ServeDomain>(
    records: Vec<R>,
    plan: ShardPlan,
    model: Option<SavedModel>,
) -> Result<(EngineTenant<R>, UpsertOutcome), Error> {
    let fingerprint = model_fingerprint(R::DOMAIN, model.as_ref());
    let (engine, outcome) = MatchEngine::bootstrap(
        plan,
        records,
        R::serve_strategies(),
        scorer_provider(model),
        serve_config(),
    )?;
    Ok((EngineTenant::new(R::DOMAIN, engine, fingerprint), outcome))
}

/// Resume a tenant engine from a persisted state (JSON text of
/// [`PipelineState::to_json`]); no pairs are re-scored.
pub fn resume_tenant<R: ServeDomain>(
    state_json: &str,
    model: Option<SavedModel>,
) -> Result<EngineTenant<R>, Error> {
    let fingerprint = model_fingerprint(R::DOMAIN, model.as_ref());
    let json = Json::parse(state_json).map_err(|e| Error::InvalidConfig(e.message))?;
    let state: PipelineState<R> =
        PipelineState::from_json(&json).map_err(|e| Error::InvalidConfig(e.message))?;
    let engine = MatchEngine::from_state(
        state,
        R::serve_strategies(),
        scorer_provider(model),
        serve_config(),
    );
    Ok(EngineTenant::new(R::DOMAIN, engine, fingerprint))
}

/// [`resume_tenant`] dispatched on a domain name string (the `serve` bin's
/// `--tenant name:domain:state[:model]` flag) — the one place the three
/// record types are enumerated for serving.
pub fn resume_tenant_named(
    domain: &str,
    state_json: &str,
    model: Option<SavedModel>,
) -> Result<Box<dyn TenantEngine>, Error> {
    match domain {
        "securities" => Ok(Box::new(resume_tenant::<SecurityRecord>(
            state_json, model,
        )?)),
        "companies" => Ok(Box::new(resume_tenant::<CompanyRecord>(state_json, model)?)),
        "products" => Ok(Box::new(resume_tenant::<ProductRecord>(state_json, model)?)),
        other => Err(Error::InvalidConfig(format!(
            "unknown domain {other:?} (expected companies | securities | products)"
        ))),
    }
}

/// Resume a tenant engine from a **binary** snapshot + WAL
/// ([`gralmatch_core::persist`]): decode the checksummed snapshot, replay
/// the log tail, and re-arm durability on the same files. The fingerprint
/// is computed from `model` *before* the provider consumes it, exactly as
/// the JSON resume does, and is re-attached so subsequent checkpoints
/// keep the `.scorer` sidecar current.
pub fn resume_tenant_binary<R: ServeDomain>(
    snapshot_path: &str,
    model: Option<SavedModel>,
    policy: CheckpointPolicy,
) -> Result<(EngineTenant<R>, RecoveryReport), Error> {
    let fingerprint = model_fingerprint(R::DOMAIN, model.as_ref());
    let (mut engine, report) = gralmatch_core::recover_engine(
        std::path::Path::new(snapshot_path),
        R::serve_strategies(),
        scorer_provider(model),
        serve_config(),
        policy,
    )?;
    engine.set_durability_fingerprint(Some(fingerprint.clone()));
    Ok((EngineTenant::new(R::DOMAIN, engine, fingerprint), report))
}

/// [`resume_tenant_binary`] dispatched on a domain name string — the
/// binary twin of [`resume_tenant_named`].
pub fn resume_tenant_named_binary(
    domain: &str,
    snapshot_path: &str,
    model: Option<SavedModel>,
    policy: CheckpointPolicy,
) -> Result<(Box<dyn TenantEngine>, RecoveryReport), Error> {
    match domain {
        "securities" => {
            let (tenant, report) =
                resume_tenant_binary::<SecurityRecord>(snapshot_path, model, policy)?;
            Ok((Box::new(tenant), report))
        }
        "companies" => {
            let (tenant, report) =
                resume_tenant_binary::<CompanyRecord>(snapshot_path, model, policy)?;
            Ok((Box::new(tenant), report))
        }
        "products" => {
            let (tenant, report) =
                resume_tenant_binary::<ProductRecord>(snapshot_path, model, policy)?;
            Ok((Box::new(tenant), report))
        }
        other => Err(Error::InvalidConfig(format!(
            "unknown domain {other:?} (expected companies | securities | products)"
        ))),
    }
}

/// One batch application's latency summary, for the per-batch trace the
/// serve binary prints.
pub fn latency_line(outcome: &UpsertOutcome, seconds: f64) -> String {
    use gralmatch_core::stage_names;
    let stage = |name: &str| outcome.trace.stage(name).map_or(0.0, |stage| stage.seconds);
    format!(
        "applied +{}~{}-{} in {seconds:.4}s (blocking {:.4}s, inference {:.4}s over {} pairs, \
         merge {:.4}s, {} components re-cleaned) → {} groups",
        outcome.inserted,
        outcome.updated,
        outcome.deleted,
        stage(stage_names::BLOCKING),
        stage(stage_names::INFERENCE),
        outcome.pairs_scored,
        stage(stage_names::MERGE),
        outcome.touched_components,
        outcome.groups.len(),
    )
}

/// Stable machine-parseable error codes. Every protocol failure is one
/// line of the form `error: <code>: <message>` — the code set is the
/// client contract (an unknown record and a parse failure must never be
/// indistinguishable again).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The verb does not exist, or a tenant prefix was used on a command
    /// that does not take one.
    BadCommand,
    /// The verb exists but its arguments are missing or malformed.
    BadArgument,
    /// An inline or file batch failed to parse.
    BadBatch,
    /// The addressed tenant is not registered.
    UnknownTenant,
    /// `group_of` on an id that is not live.
    UnknownRecord,
    /// `members` on an id that is not a group id.
    UnknownGroup,
    /// The engine rejected a well-formed batch (validation failure).
    ApplyRejected,
    /// A model swap was refused; the old scorer keeps serving.
    ModelRejected,
    /// `checkpoint` on a tenant that never enabled durability.
    NotDurable,
    /// Reading or writing a file failed.
    Io,
    /// The single writer is gone (server shutting down).
    WriterGone,
}

impl ErrorCode {
    /// The wire token for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadCommand => "bad-command",
            ErrorCode::BadArgument => "bad-argument",
            ErrorCode::BadBatch => "bad-batch",
            ErrorCode::UnknownTenant => "unknown-tenant",
            ErrorCode::UnknownRecord => "unknown-record",
            ErrorCode::UnknownGroup => "unknown-group",
            ErrorCode::ApplyRejected => "apply-rejected",
            ErrorCode::ModelRejected => "model-rejected",
            ErrorCode::NotDurable => "not-durable",
            ErrorCode::Io => "io",
            ErrorCode::WriterGone => "writer-gone",
        }
    }
}

/// Build a coded error payload (`<code>: <message>` — the serving layers
/// prefix `error: ` when writing it to a client).
pub fn coded(code: ErrorCode, message: impl std::fmt::Display) -> String {
    format!("{}: {message}", code.as_str())
}

/// Map a [`HostError`] onto its protocol error code.
pub fn host_error(err: &HostError) -> String {
    match err {
        HostError::UnknownTenant(name) => coded(
            ErrorCode::UnknownTenant,
            format!("no tenant named {name:?} (try `tenants`)"),
        ),
        HostError::BadBatch(message) => coded(ErrorCode::BadBatch, message),
        HostError::BatchRejected(message) => coded(ErrorCode::ApplyRejected, message),
        HostError::ModelRejected(message) => coded(ErrorCode::ModelRejected, message),
        HostError::InvalidTenant(message) => coded(ErrorCode::BadArgument, message),
        HostError::Durability(message) => coded(ErrorCode::Io, message),
    }
}

/// One protocol verb. Batches stay as raw JSON here — they parse into the
/// addressed tenant's record type behind the vtable
/// ([`TenantEngine::apply_batch_json`]), which is what lets one grammar
/// serve every domain.
#[derive(Debug, Clone)]
pub enum ServeCommand {
    /// `hello` — versioned banner.
    Hello,
    /// `ping` — liveness.
    Ping,
    /// `help` — one-line usage.
    Help,
    /// `tenants` — list tenants with domains and epochs.
    Tenants,
    /// `use <tenant>` — set the session's current tenant.
    Use(String),
    /// `group_of <record-id>`
    GroupOf(RecordId),
    /// `members <group-id>`
    Members(RecordId),
    /// `stats`
    Stats,
    /// `latency` — the tenant's batch-apply histogram.
    Latency,
    /// `apply <path>`
    ApplyFile(String),
    /// An inline `{"inserts":…}` batch (still unparsed JSON).
    InlineBatch(Json),
    /// `save_state <path>`
    SaveState(String),
    /// `checkpoint` — force a binary snapshot rewrite + WAL truncate on a
    /// durable tenant.
    Checkpoint,
    /// `model <tenant> <path>` — hot model swap.
    Model {
        /// The tenant to swap.
        tenant: String,
        /// Path of the `SavedModel` JSON (sidecar at `<path>.scorer`).
        path: String,
    },
}

impl ServeCommand {
    /// Whether [`lookup_response`] can answer this command from a tenant
    /// snapshot alone (any thread, any epoch).
    pub fn is_lookup(&self) -> bool {
        matches!(
            self,
            ServeCommand::GroupOf(_) | ServeCommand::Members(_) | ServeCommand::Stats
        )
    }

    /// Whether this command is answered by the session/connection layer
    /// itself (no engine access at all).
    pub fn is_session(&self) -> bool {
        matches!(
            self,
            ServeCommand::Hello
                | ServeCommand::Ping
                | ServeCommand::Help
                | ServeCommand::Tenants
                | ServeCommand::Use(_)
        )
    }

    /// Whether a `<tenant>.` prefix may address this command.
    pub fn tenant_scoped(&self) -> bool {
        matches!(
            self,
            ServeCommand::GroupOf(_)
                | ServeCommand::Members(_)
                | ServeCommand::Stats
                | ServeCommand::Latency
                | ServeCommand::ApplyFile(_)
                | ServeCommand::SaveState(_)
                | ServeCommand::Checkpoint
        )
    }
}

/// One parsed protocol line: an optional `<tenant>.` address plus the
/// verb. `tenant: None` means the session's current tenant.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Explicit tenant address (`sec.group_of 7`), if any.
    pub tenant: Option<String>,
    /// The verb.
    pub command: ServeCommand,
}

/// The one-line `help` response (responses are one line per request line,
/// so help is too).
pub const HELP_LINE: &str = "commands: hello | ping | help | tenants | use <tenant> | \
     [<tenant>.]group_of <id> | [<tenant>.]members <id> | [<tenant>.]stats | \
     [<tenant>.]latency | [<tenant>.]apply <batch.json> | [<tenant>.]save_state <state.json> | \
     [<tenant>.]checkpoint | model <tenant> <model.json> | \
     inline batch JSON {\"inserts\":…} | shutdown";

/// The versioned `hello` banner.
pub fn hello_line(tenants: usize, default_tenant: &str) -> String {
    format!(
        "hello gralmatch-serve protocol-version={PROTOCOL_VERSION} tenants={tenants} \
         default={default_tenant}"
    )
}

/// The `tenants` listing over `(name, domain, epoch)` rows.
pub fn tenants_line<'a>(rows: impl Iterator<Item = (&'a str, &'a str, u64)>) -> String {
    let rendered: Vec<String> = rows
        .map(|(name, domain, epoch)| format!("{name}={domain}@epoch={epoch}"))
        .collect();
    format!("tenants: {}", rendered.join(", "))
}

/// Parse one protocol line. `Ok(None)` is an empty line (no response);
/// `Err` is a coded error payload for the client — the connection or
/// session stays usable either way.
pub fn parse_request(line: &str) -> Result<Option<ServeRequest>, String> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    if line.starts_with('{') {
        let json = Json::parse(line).map_err(|e| {
            coded(
                ErrorCode::BadBatch,
                format!("bad batch JSON: {}", e.message),
            )
        })?;
        return Ok(Some(ServeRequest {
            tenant: None,
            command: ServeCommand::InlineBatch(json),
        }));
    }
    let mut parts = line.split_whitespace();
    let head = parts.next().unwrap_or_default();
    let (tenant, verb) = match head.split_once('.') {
        Some((tenant, verb)) => (Some(tenant.to_string()), verb),
        None => (None, head),
    };
    let command = match verb {
        "hello" => ServeCommand::Hello,
        "ping" => ServeCommand::Ping,
        "help" => ServeCommand::Help,
        "tenants" => ServeCommand::Tenants,
        "use" => ServeCommand::Use(
            parts
                .next()
                .ok_or_else(|| coded(ErrorCode::BadArgument, "usage: use <tenant>"))?
                .to_string(),
        ),
        "group_of" => ServeCommand::GroupOf(RecordId(parse_id(parts.next())?)),
        "members" => ServeCommand::Members(RecordId(parse_id(parts.next())?)),
        "stats" => ServeCommand::Stats,
        "latency" => ServeCommand::Latency,
        "apply" => ServeCommand::ApplyFile(
            parts
                .next()
                .ok_or_else(|| coded(ErrorCode::BadArgument, "usage: apply <batch.json>"))?
                .to_string(),
        ),
        "save_state" => ServeCommand::SaveState(
            parts
                .next()
                .ok_or_else(|| coded(ErrorCode::BadArgument, "usage: save_state <state.json>"))?
                .to_string(),
        ),
        "checkpoint" => ServeCommand::Checkpoint,
        "model" => {
            let usage = || coded(ErrorCode::BadArgument, "usage: model <tenant> <model.json>");
            ServeCommand::Model {
                tenant: parts.next().ok_or_else(usage)?.to_string(),
                path: parts.next().ok_or_else(usage)?.to_string(),
            }
        }
        other => {
            return Err(coded(
                ErrorCode::BadCommand,
                format!("unknown command {other:?} — try `help`"),
            ))
        }
    };
    if tenant.is_some() && !command.tenant_scoped() {
        return Err(coded(
            ErrorCode::BadCommand,
            format!("`{verb}` does not take a `<tenant>.` prefix"),
        ));
    }
    Ok(Some(ServeRequest { tenant, command }))
}

/// Answer a snapshot-answerable command from `tenant_name`'s snapshot
/// (`None` when the command needs the session or the writer). Every
/// response is one line, internally consistent with the snapshot's epoch;
/// misses are **coded errors** (`unknown-record`, `unknown-group`), not
/// Ok-lines, so clients can branch without parsing prose.
pub fn lookup_response(
    tenant_name: &str,
    snapshot: &GroupSnapshot,
    command: &ServeCommand,
) -> Option<Result<String, String>> {
    match command {
        ServeCommand::GroupOf(id) => Some(match snapshot.group_of(*id) {
            Some(group) => {
                let members = snapshot
                    .group_members(group)
                    .expect("group id came from the snapshot");
                Ok(format!(
                    "record {} → group {} ({} member{}): {}",
                    id.0,
                    group.0,
                    members.len(),
                    if members.len() == 1 { "" } else { "s" },
                    render_members(members),
                ))
            }
            None => Err(coded(
                ErrorCode::UnknownRecord,
                format!(
                    "record {} is not live on tenant {tenant_name} (epoch {})",
                    id.0,
                    snapshot.epoch()
                ),
            )),
        }),
        ServeCommand::Members(id) => Some(match snapshot.group_members(*id) {
            Some(members) => Ok(format!("group {}: {}", id.0, render_members(members))),
            None => Err(coded(
                ErrorCode::UnknownGroup,
                format!(
                    "{} is not a group id on tenant {tenant_name} (epoch {})",
                    id.0,
                    snapshot.epoch()
                ),
            )),
        }),
        ServeCommand::Stats => {
            let stats = snapshot.stats();
            Some(Ok(format!(
                "tenant {tenant_name}: {} live records ({} ids), {} groups (largest {}), \
                 {} candidates, {} predictions, {} batches applied in {:.4}s, snapshot epoch {}",
                stats.num_live,
                stats.num_ids,
                stats.num_groups,
                stats.largest_group,
                stats.num_candidates,
                stats.num_predicted,
                stats.batches_applied,
                stats.total_apply_seconds,
                snapshot.epoch(),
            )))
        }
        _ => None,
    }
}

fn parse_id(token: Option<&str>) -> Result<u32, String> {
    token
        .ok_or_else(|| coded(ErrorCode::BadArgument, "missing record id"))?
        .parse()
        .map_err(|_| coded(ErrorCode::BadArgument, "record ids are unsigned integers"))
}

fn render_members(members: &[RecordId]) -> String {
    const SHOWN: usize = 16;
    let mut rendered: Vec<String> = members
        .iter()
        .take(SHOWN)
        .map(|id| id.0.to_string())
        .collect();
    if members.len() > SHOWN {
        rendered.push(format!("… +{}", members.len() - SHOWN));
    }
    format!("[{}]", rendered.join(", "))
}

/// Sidecar path recording which scorer a state or model file pairs with.
pub fn fingerprint_path(path: &str) -> String {
    format!("{path}.scorer")
}

/// A live serve session: the tenant host plus the protocol, with one
/// batch-apply [`LatencyHistogram`] per tenant. This is the single-writer
/// side — `bench::net` forwards every mutating command here.
pub struct HostSession {
    host: EngineHost,
    /// Per-tenant apply latency, parallel to the host's tenant order.
    latencies: Vec<LatencyHistogram>,
}

impl HostSession {
    /// Wrap a host (at least one tenant).
    pub fn new(host: EngineHost) -> Result<Self, Error> {
        if host.is_empty() {
            return Err(Error::EmptyInput("a serve session needs ≥ 1 tenant"));
        }
        let latencies = (0..host.len()).map(|_| LatencyHistogram::new()).collect();
        Ok(HostSession { host, latencies })
    }

    /// A one-entry host — the single-tenant deployment shape.
    pub fn single(name: &str, tenant: Box<dyn TenantEngine>) -> Result<Self, Error> {
        let mut host = EngineHost::new();
        host.add_tenant(name, tenant)
            .map_err(|e| Error::InvalidConfig(e.to_string()))?;
        HostSession::new(host)
    }

    /// The wrapped host.
    pub fn host(&self) -> &EngineHost {
        &self.host
    }

    /// The wrapped host, mutably (in-process drivers).
    pub fn host_mut(&mut self) -> &mut EngineHost {
        &mut self.host
    }

    /// The default tenant's name (first registered).
    pub fn default_tenant(&self) -> &str {
        self.host
            .default_tenant()
            .expect("sessions hold ≥ 1 tenant")
    }

    /// A tenant's batch-apply latency histogram (applies through this
    /// session — [`apply`](Self::apply)/[`apply_json`](Self::apply_json)
    /// and protocol batches).
    pub fn latency(&self, tenant: &str) -> Option<&LatencyHistogram> {
        let index = self.host.names().iter().position(|name| *name == tenant)?;
        Some(&self.latencies[index])
    }

    fn record_latency(&mut self, tenant: &str, seconds: f64) {
        if let Some(index) = self.host.names().iter().position(|name| *name == tenant) {
            self.latencies[index].record_duration(std::time::Duration::from_secs_f64(seconds));
        }
    }

    /// Apply one JSON batch to `tenant`, recording its latency.
    pub fn apply_json(
        &mut self,
        tenant: &str,
        batch: &Json,
    ) -> Result<(UpsertOutcome, f64), HostError> {
        let entry = self
            .host
            .tenant_mut(tenant)
            .ok_or_else(|| HostError::UnknownTenant(tenant.to_string()))?;
        let (outcome, seconds) = entry.apply_batch_json(batch)?;
        self.record_latency(tenant, seconds);
        Ok((outcome, seconds))
    }

    /// Apply one typed batch to `tenant` (no JSON boundary), recording
    /// its latency. Fails with `UnknownTenant` when the name is missing
    /// *or* `R` is not the tenant's record type.
    pub fn apply<R: ServeDomain>(
        &mut self,
        tenant: &str,
        batch: &UpsertBatch<R>,
    ) -> Result<(UpsertOutcome, f64), HostError> {
        let entry = self
            .host
            .typed_tenant_mut::<R>(tenant)
            .ok_or_else(|| HostError::UnknownTenant(format!("{tenant} (as {})", R::DOMAIN)))?;
        let (outcome, seconds) = entry.apply(batch)?;
        self.record_latency(tenant, seconds);
        Ok((outcome, seconds))
    }

    /// Serialize one tenant's standing state.
    pub fn state_json(&self, tenant: &str) -> Result<String, HostError> {
        self.host
            .tenant(tenant)
            .map(TenantEngine::state_json)
            .ok_or_else(|| HostError::UnknownTenant(tenant.to_string()))
    }

    /// Persist one tenant's state **and** its scorer fingerprint sidecar
    /// (`<path>.scorer`) — resume refuses a recorded mismatch.
    pub fn save_state(&self, tenant: &str, path: &str) -> Result<String, String> {
        let entry = self
            .host
            .tenant(tenant)
            .ok_or_else(|| host_error(&HostError::UnknownTenant(tenant.to_string())))?;
        persist::write_atomic(
            std::path::Path::new(path),
            entry.state_json().as_bytes(),
            false,
        )
        .map_err(|e| coded(ErrorCode::Io, format!("{path}: {e}")))?;
        persist::write_atomic(
            std::path::Path::new(&fingerprint_path(path)),
            entry.fingerprint().as_bytes(),
            false,
        )
        .map_err(|e| coded(ErrorCode::Io, format!("{path}.scorer: {e}")))?;
        Ok(format!("state saved to {path} (tenant {tenant})"))
    }

    /// Hot-swap `tenant`'s model from a `SavedModel` file, validating the
    /// `<path>.scorer` sidecar when present. On any error the old scorer
    /// keeps serving.
    pub fn swap_model_file(&mut self, tenant: &str, path: &str) -> Result<String, String> {
        let model = SavedModel::load(std::path::Path::new(path))
            .map_err(|e| coded(ErrorCode::Io, format!("{path}: {e:?}")))?;
        let recorded = std::fs::read_to_string(fingerprint_path(path)).ok();
        let fingerprint = self
            .host
            .swap_model(tenant, model, recorded.as_deref())
            .map_err(|e| host_error(&e))?;
        Ok(format!("model swapped on {tenant}: {fingerprint}"))
    }

    /// Execute one protocol line against the session, with `cursor` as
    /// the session's current-tenant state (the stdin analogue of a TCP
    /// connection's `use` state). Errors are coded payloads; the session
    /// stays usable.
    pub fn command(&mut self, cursor: &mut String, line: &str) -> Result<String, String> {
        let Some(request) = parse_request(line)? else {
            return Ok(String::new());
        };
        if let ServeCommand::Use(name) = &request.command {
            return if self.host.tenant(name).is_some() {
                cursor.clone_from(name);
                Ok(format!("using {name}"))
            } else {
                Err(host_error(&HostError::UnknownTenant(name.clone())))
            };
        }
        match &request.command {
            ServeCommand::Hello => {
                return Ok(hello_line(self.host.len(), self.default_tenant()));
            }
            ServeCommand::Ping => return Ok("pong".to_string()),
            ServeCommand::Help => return Ok(HELP_LINE.to_string()),
            ServeCommand::Tenants => {
                return Ok(tenants_line(self.host.iter().map(|(name, tenant)| {
                    (name, tenant.domain(), tenant.snapshot().epoch())
                })));
            }
            _ => {}
        }
        let tenant = request.tenant.clone().unwrap_or_else(|| cursor.clone());
        if self.host.tenant(&tenant).is_none() {
            return Err(host_error(&HostError::UnknownTenant(tenant)));
        }
        if request.command.is_lookup() {
            let snapshot = self
                .host
                .tenant(&tenant)
                .expect("tenant checked above")
                .snapshot();
            return lookup_response(&tenant, &snapshot, &request.command)
                .expect("is_lookup commands are snapshot-answerable");
        }
        self.execute(&tenant, &request.command)
    }

    /// Execute one **writer-side** command (`latency`, `apply`, inline
    /// batch, `save_state`, `model`) against `tenant`. This is the
    /// function `bench::net`'s write queue drains into.
    pub fn execute(&mut self, tenant: &str, command: &ServeCommand) -> Result<String, String> {
        match command {
            ServeCommand::InlineBatch(json) => {
                let (outcome, seconds) =
                    self.apply_json(tenant, json).map_err(|e| host_error(&e))?;
                Ok(latency_line(&outcome, seconds))
            }
            ServeCommand::ApplyFile(path) => {
                let json = load_batch_json(path)
                    .map_err(|e| coded(ErrorCode::Io, format!("{path}: {e:?}")))?;
                let (outcome, seconds) =
                    self.apply_json(tenant, &json).map_err(|e| host_error(&e))?;
                Ok(latency_line(&outcome, seconds))
            }
            ServeCommand::SaveState(path) => self.save_state(tenant, path),
            ServeCommand::Checkpoint => {
                let entry = self
                    .host
                    .tenant_mut(tenant)
                    .ok_or_else(|| host_error(&HostError::UnknownTenant(tenant.to_string())))?;
                if !entry.is_durable() {
                    return Err(coded(
                        ErrorCode::NotDurable,
                        format!(
                            "tenant {tenant} has no durability enabled (run the server with \
                             --durable)"
                        ),
                    ));
                }
                let info = entry.checkpoint().map_err(|e| host_error(&e))?;
                Ok(format!(
                    "checkpointed {tenant} at epoch {} ({} bytes)",
                    info.epoch, info.snapshot_bytes
                ))
            }
            ServeCommand::Model { tenant, path } => {
                let tenant = tenant.clone();
                let path = path.clone();
                self.swap_model_file(&tenant, &path)
            }
            ServeCommand::Latency => {
                let histogram = self
                    .latency(tenant)
                    .ok_or_else(|| host_error(&HostError::UnknownTenant(tenant.to_string())))?;
                Ok(if histogram.count() == 0 {
                    format!("tenant {tenant}: no batches applied yet")
                } else {
                    format!(
                        "tenant {tenant}: {} batch(es) applied, latency {}",
                        histogram.count(),
                        histogram.summary()
                    )
                })
            }
            other => unreachable!("command {other:?} is not writer-side"),
        }
    }
}

/// Read one batch file as raw JSON (parsed into the tenant's record type
/// at apply time).
pub fn load_batch_json(path: &str) -> Result<Json, Error> {
    let text = std::fs::read_to_string(path).map_err(Error::Io)?;
    Json::parse(&text).map_err(|e| Error::InvalidConfig(e.message))
}

/// Write one [`UpsertBatch`] as a JSON file.
pub fn save_batch<R: Record + ToJson>(path: &str, batch: &UpsertBatch<R>) -> Result<(), Error> {
    std::fs::write(path, batch.to_json().to_pretty_string()).map_err(Error::Io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_datagen::{generate, generate_wdc, GenerationConfig, WdcConfig};

    fn financial() -> gralmatch_datagen::FinancialDataset {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 60;
        generate(&config).unwrap()
    }

    fn securities() -> Vec<SecurityRecord> {
        financial().securities.records().to_vec()
    }

    fn products() -> Vec<ProductRecord> {
        let config = WdcConfig {
            num_entities: 30,
            num_sources: 4,
            ..WdcConfig::default()
        };
        generate_wdc(&config).products.records().to_vec()
    }

    /// A three-tenant session: securities (default), companies, products.
    fn tri_tenant_session() -> HostSession {
        let data = financial();
        let mut host = EngineHost::new();
        let (sec, _) =
            bootstrap_tenant(data.securities.records().to_vec(), ShardPlan::new(2), None).unwrap();
        host.add_tenant("sec", Box::new(sec)).unwrap();
        let (comp, _) =
            bootstrap_tenant(data.companies.records().to_vec(), ShardPlan::new(2), None).unwrap();
        host.add_tenant("comp", Box::new(comp)).unwrap();
        let (prod, _) = bootstrap_tenant(products(), ShardPlan::new(2), None).unwrap();
        host.add_tenant("prod", Box::new(prod)).unwrap();
        HostSession::new(host).unwrap()
    }

    /// The satellite smoke: persist a bootstrapped tenant, resume it from
    /// JSON, apply a delete-bearing batch, and check the lookups reflect
    /// the re-cleaned components.
    #[test]
    fn resumed_tenant_reflects_delete_bearing_batches_in_lookups() {
        let records = securities();
        let (tenant, load) =
            bootstrap_tenant::<SecurityRecord>(records.clone(), ShardPlan::new(3), None).unwrap();
        assert_eq!(load.inserted, records.len());
        let state = tenant.state_json();

        // Resume from disk-shaped state with a fresh provider.
        let mut resumed = resume_tenant::<SecurityRecord>(&state, None).unwrap();
        assert_eq!(resumed.engine().groups(), tenant.engine().groups());
        assert_eq!(resumed.fingerprint(), tenant.fingerprint());

        // Delete one member of a multi-record group.
        let group = resumed
            .engine()
            .groups()
            .into_iter()
            .find(|group| group.len() > 1)
            .expect("some multi-record group");
        let victim = group[0];
        let survivors: Vec<RecordId> = group[1..].to_vec();
        let (outcome, _) = resumed
            .apply(&UpsertBatch {
                inserts: Vec::new(),
                updates: Vec::new(),
                deletes: vec![victim],
            })
            .unwrap();
        assert_eq!(outcome.deleted, 1);

        // The deleted id no longer resolves; the survivors' group was
        // re-cleaned and no longer contains it.
        assert_eq!(resumed.group_of(victim), None);
        for &id in &survivors {
            let root = resumed.group_of(id).expect("survivor stays live");
            let members = resumed.group_members(root).unwrap();
            assert!(!members.contains(&victim), "lookup still sees deleted id");
        }
    }

    #[test]
    fn command_protocol_round_trips_across_tenants() {
        let mut session = tri_tenant_session();
        let mut cursor = session.default_tenant().to_string();
        assert_eq!(cursor, "sec");

        // Session commands.
        let hello = session.command(&mut cursor, "hello").unwrap();
        assert!(hello.contains("protocol-version=2"), "{hello}");
        assert!(hello.contains("tenants=3"), "{hello}");
        assert_eq!(session.command(&mut cursor, "ping").unwrap(), "pong");
        let help = session.command(&mut cursor, "help").unwrap();
        assert!(help.contains("group_of"), "{help}");
        let tenants = session.command(&mut cursor, "tenants").unwrap();
        for expected in [
            "sec=securities@epoch=1",
            "comp=companies@epoch=1",
            "prod=products@epoch=1",
        ] {
            assert!(tenants.contains(expected), "{tenants}");
        }

        // Lookups on the current tenant, explicit addressing, and `use`.
        let stats = session.command(&mut cursor, "stats").unwrap();
        assert!(stats.starts_with("tenant sec:"), "{stats}");
        assert!(stats.contains("live records"), "{stats}");
        let comp_stats = session.command(&mut cursor, "comp.stats").unwrap();
        assert!(comp_stats.starts_with("tenant comp:"), "{comp_stats}");
        assert_eq!(
            cursor, "sec",
            "explicit addressing must not move the cursor"
        );
        assert_eq!(
            session.command(&mut cursor, "use prod").unwrap(),
            "using prod"
        );
        assert_eq!(cursor, "prod");
        let stats = session.command(&mut cursor, "stats").unwrap();
        assert!(stats.starts_with("tenant prod:"), "{stats}");
        session.command(&mut cursor, "use sec").unwrap();

        // Coded errors: distinct codes for distinct failures.
        let err = session.command(&mut cursor, "bogus").unwrap_err();
        assert!(err.starts_with("bad-command: "), "{err}");
        let err = session
            .command(&mut cursor, "group_of notanid")
            .unwrap_err();
        assert!(err.starts_with("bad-argument: "), "{err}");
        let err = session.command(&mut cursor, "group_of 999999").unwrap_err();
        assert!(err.starts_with("unknown-record: "), "{err}");
        let err = session.command(&mut cursor, "members 999999").unwrap_err();
        assert!(err.starts_with("unknown-group: "), "{err}");
        let err = session.command(&mut cursor, "nope.stats").unwrap_err();
        assert!(err.starts_with("unknown-tenant: "), "{err}");
        let err = session.command(&mut cursor, "use nope").unwrap_err();
        assert!(err.starts_with("unknown-tenant: "), "{err}");
        let err = session.command(&mut cursor, "{not json").unwrap_err();
        assert!(err.starts_with("bad-batch: "), "{err}");
        let err = session.command(&mut cursor, "sec.ping").unwrap_err();
        assert!(err.starts_with("bad-command: "), "{err}");
        assert_eq!(session.command(&mut cursor, "").unwrap(), "");

        // An inline batch applies to the *current* tenant and shows up in
        // its latency histogram — and only its.
        let held_out = securities()[0].clone();
        let delete = UpsertBatch::<SecurityRecord> {
            inserts: Vec::new(),
            updates: Vec::new(),
            deletes: vec![held_out.id],
        };
        let response = session
            .command(&mut cursor, &delete.to_json().to_compact_string())
            .unwrap();
        assert!(response.contains("applied +0~0-1"), "{response}");
        let latency = session.command(&mut cursor, "latency").unwrap();
        assert!(latency.contains("1 batch(es) applied"), "{latency}");
        let prod_latency = session.command(&mut cursor, "prod.latency").unwrap();
        assert!(
            prod_latency.contains("no batches applied"),
            "{prod_latency}"
        );

        // The apply bumped only sec's epoch.
        let tenants = session.command(&mut cursor, "tenants").unwrap();
        assert!(tenants.contains("sec=securities@epoch=2"), "{tenants}");
        assert!(tenants.contains("comp=companies@epoch=1"), "{tenants}");
        assert!(tenants.contains("prod=products@epoch=1"), "{tenants}");
    }

    /// Snapshot-served lookups and the session's command loop are the
    /// same code path — identical responses (and identical coded errors)
    /// for every read request.
    #[test]
    fn snapshot_lookups_match_session_responses() {
        let records = securities();
        let (tenant, _) =
            bootstrap_tenant::<SecurityRecord>(records, ShardPlan::new(2), None).unwrap();
        let mut session = HostSession::single("sec", Box::new(tenant)).unwrap();
        let mut cursor = session.default_tenant().to_string();
        let snapshot = session.host().tenant("sec").unwrap().snapshot();
        let max_id = snapshot.stats().num_ids as u32;
        for id in 0..max_id.min(64) {
            for line in [format!("group_of {id}"), format!("members {id}")] {
                let request = parse_request(&line).unwrap().unwrap();
                assert!(request.command.is_lookup());
                assert_eq!(
                    lookup_response("sec", &snapshot, &request.command),
                    Some(session.command(&mut cursor, &line)),
                    "{line}"
                );
            }
        }
        let stats = parse_request("stats").unwrap().unwrap();
        assert_eq!(
            lookup_response("sec", &snapshot, &stats.command).unwrap(),
            session.command(&mut cursor, "stats")
        );
        // Write requests are not answerable from a snapshot.
        let write = parse_request("apply some.json").unwrap().unwrap();
        assert!(!write.command.is_lookup());
        assert!(lookup_response("sec", &snapshot, &write.command).is_none());
    }

    #[test]
    fn typed_applies_route_by_name_and_type() {
        let mut session = tri_tenant_session();
        let victim = securities()[0].id;
        let batch = UpsertBatch::<SecurityRecord> {
            inserts: Vec::new(),
            updates: Vec::new(),
            deletes: vec![victim],
        };
        // Right name, wrong record type: UnknownTenant, nothing applied.
        let err = session.apply("comp", &batch).unwrap_err();
        assert!(matches!(err, HostError::UnknownTenant(_)), "{err:?}");
        let (outcome, _) = session.apply("sec", &batch).unwrap();
        assert_eq!(outcome.deleted, 1);
        assert_eq!(session.latency("sec").unwrap().count(), 1);
        assert_eq!(session.latency("comp").unwrap().count(), 0);
    }
}
