//! Benchmark harness regenerating every table and figure of the GraLMatch
//! evaluation (see EXPERIMENTS.md for the full index).
//!
//! Binaries:
//! * `table1` — dataset statistics,
//! * `table2` — blockings and candidate-pair counts,
//! * `table3` — fine-tuning scores,
//! * `table4` — end-to-end entity group matching (+ sensitivity variants),
//! * `figures` — the scenario reproductions of Figures 2–4,
//! * `repro` — runs everything and writes a combined report,
//! * `upsert` — incremental-upsert replay (initial load + K delta
//!   batches) with per-batch reconciliation latency,
//! * `serve` — the match *service*: bootstrap a `MatchEngine`, persist
//!   its state, resume it with a trained matcher from disk, stream
//!   `UpsertBatch`es, answer group lookups (see [`serve`]) — over stdin
//!   or as a multi-client TCP front-end (see [`net`]),
//! * `loadgen` — concurrent lookup/churn load generator measuring
//!   lookups/sec and p50/p99/p999 lookup latency against the epoch-
//!   snapshot serving path,
//! * `featbench` — reference vs compiled featurization throughput with a
//!   bit-identity parity gate,
//! * `perfcmp` — the CI perf gate: diffs two repro reports per stage and
//!   fails on regressions or trace-shape changes.
//!
//! Criterion benches under `benches/` cover the component ablations
//! (min-cut vs betweenness, blocking throughput, inference, cleanup).

pub mod cli;
pub mod harness;
pub mod net;
pub mod paper;
pub mod perfgate;
pub mod serve;
pub mod table;
