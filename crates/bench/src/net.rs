//! Concurrent serving: the calling thread as single writer owning the
//! [`ServeSession`], N reader threads answering lookups from the current
//! epoch snapshot, and a line-protocol TCP front-end over `std::net`.
//!
//! ## Architecture
//!
//! ```text
//!                        ┌────────────────────────────────┐
//!   write queue (mpsc)   │ writer (caller thread):        │
//!  ─────────────────────▶│  ServeSession::apply_batch     ├──▶ Published<GroupSnapshot>
//!                        │  → advance + publish epoch     │        │ (Arc swap)
//!                        └────────────────────────────────┘        ▼
//!   TCP clients ──▶ acceptor ──▶ connection queue ──▶ N readers on a WorkerPool,
//!                                                     each with a PublishedReader —
//!                                                     lookups never wait on the writer
//! ```
//!
//! The split is strict: only the writer thread touches the engine (the
//! engine's scorer providers and blockers are not `Send`, so the session
//! never migrates — the *readers* are the spawned threads). Readers hold
//! a [`PublishedReader`] over the engine's snapshot slot and serve
//! `group_of`/`members`/`stats` from whichever epoch is current; a batch
//! mid-apply is invisible until its snapshot is published. Write
//! requests arriving on a reader's connection are forwarded to the
//! writer over the [`WriteQueue`] channel and the response sent back on
//! the same connection, so one TCP connection can mix reads and writes
//! freely.

use crate::serve::{lookup_response, parse_request, ServeRequest, ServeSession};
use gralmatch_core::{GroupSnapshot, UpsertBatch, UpsertOutcome};
use gralmatch_records::SecurityRecord;
use gralmatch_util::{PublishedReader, WorkerPool};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One unit of work for the writer, with a reply channel.
enum WriteRequest {
    /// A mutating protocol request (apply/save_state/inline batch);
    /// replies with the protocol response line.
    Request(ServeRequest, Sender<Result<String, String>>),
    /// A direct batch (the loadgen churn driver); replies with the
    /// outcome so callers can read the publish metrics.
    Batch(
        Box<UpsertBatch<SecurityRecord>>,
        Sender<Result<UpsertOutcome, String>>,
    ),
}

/// Split a session into its write queue (drained by the calling thread)
/// and a cloneable per-reader [`SessionHandle`]. [`WriteQueue::drain`]
/// returns once every handle clone is dropped.
pub fn session_channel(session: &ServeSession) -> (WriteQueue, SessionHandle) {
    let (sender, receiver) = channel();
    let handle = SessionHandle {
        reader: PublishedReader::new(session.engine().snapshot_source()),
        sender,
    };
    (WriteQueue { receiver }, handle)
}

/// The writer side of [`session_channel`]: the single consumer of
/// enqueued writes.
pub struct WriteQueue {
    receiver: Receiver<WriteRequest>,
}

impl WriteQueue {
    /// Serve writes on the current thread until every [`SessionHandle`]
    /// is dropped. Returns the number of writes served. Failed applies
    /// answer their sender and keep the queue running.
    pub fn drain(self, session: &mut ServeSession) -> u64 {
        let mut served = 0;
        while let Ok(request) = self.receiver.recv() {
            served += 1;
            match request {
                WriteRequest::Request(request, reply) => {
                    let _ = reply.send(session.execute(&request));
                }
                WriteRequest::Batch(batch, reply) => {
                    let _ = reply.send(
                        session
                            .apply(&batch)
                            .map(|(outcome, _)| outcome)
                            .map_err(|e| format!("apply failed: {e:?}")),
                    );
                }
            }
        }
        served
    }
}

/// A per-reader-thread view of a serving session: lock-free snapshot
/// lookups plus a channel to the single writer. `Send`, cheap to clone —
/// one per thread.
pub struct SessionHandle {
    reader: PublishedReader<GroupSnapshot>,
    sender: Sender<WriteRequest>,
}

impl Clone for SessionHandle {
    fn clone(&self) -> Self {
        SessionHandle {
            reader: self.reader.clone(),
            sender: self.sender.clone(),
        }
    }
}

impl SessionHandle {
    /// The current epoch's snapshot (refreshes the cached `Arc` only when
    /// the writer published a new epoch).
    pub fn snapshot(&mut self) -> &Arc<GroupSnapshot> {
        self.reader.current()
    }

    /// Execute one protocol line: lookups answer on this thread from the
    /// current snapshot; writes round-trip through the writer.
    pub fn command(&mut self, line: &str) -> Result<String, String> {
        let Some(request) = parse_request(line)? else {
            return Ok(String::new());
        };
        if let Some(response) = lookup_response(self.reader.current(), &request) {
            return Ok(response);
        }
        let (reply, responses) = channel();
        self.sender
            .send(WriteRequest::Request(request, reply))
            .map_err(|_| "writer is gone".to_string())?;
        responses
            .recv()
            .map_err(|_| "writer dropped the request".to_string())?
    }

    /// Apply one batch through the writer, blocking until it is
    /// reconciled and its snapshot published.
    pub fn apply_batch(&self, batch: UpsertBatch<SecurityRecord>) -> Result<UpsertOutcome, String> {
        let (reply, responses) = channel();
        self.sender
            .send(WriteRequest::Batch(Box::new(batch), reply))
            .map_err(|_| "writer is gone".to_string())?;
        responses
            .recv()
            .map_err(|_| "writer dropped the batch".to_string())?
    }
}

/// How the TCP front-end ran: connections served and requests answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines answered (errors included).
    pub requests: u64,
}

/// Poll interval of the accept loop and the per-connection read timeout —
/// the latency bound on noticing a `shutdown`.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Serve the line protocol on `listener` until a client sends
/// `shutdown`: the calling thread is the single writer draining the
/// write queue; an acceptor plus `readers` reader threads run on a
/// [`WorkerPool`], each reader pulling accepted connections from a
/// shared queue and answering request lines from its own epoch-snapshot
/// view. Responses are one line per request line; protocol failures
/// answer `error: …` and keep the connection open.
///
/// Returns the session (persist its state with
/// [`ServeSession::state_json`]) and a run report.
pub fn serve_tcp(
    listener: TcpListener,
    mut session: ServeSession,
    readers: usize,
) -> std::io::Result<(ServeSession, ServeReport)> {
    listener.set_nonblocking(true)?;
    let (queue, handle) = session_channel(&session);
    let stop = AtomicBool::new(false);
    let connections: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
    let available = Condvar::new();
    let accepted = AtomicU64::new(0);
    let answered = AtomicU64::new(0);

    std::thread::scope(|scope| {
        {
            // Worker 0 accepts; workers 1..=readers serve connections.
            // When broadcast returns every handle clone is dropped, which
            // ends the writer's drain below.
            let (stop, connections, available) = (&stop, &connections, &available);
            let (accepted, answered, listener) = (&accepted, &answered, &listener);
            let base = handle;
            scope.spawn(move || {
                WorkerPool::new(readers.max(1) + 1).broadcast(|worker| {
                    if worker == 0 {
                        accept_loop(listener, stop, connections, available, accepted);
                        return;
                    }
                    let mut handle = base.clone();
                    while let Some(stream) = next_connection(stop, connections, available) {
                        // A dropped connection only ends that client.
                        let _ = serve_connection(stream, &mut handle, stop, answered);
                    }
                });
            });
        }
        queue.drain(&mut session);
    });

    Ok((
        session,
        ServeReport {
            connections: accepted.load(Ordering::Relaxed),
            requests: answered.load(Ordering::Relaxed),
        },
    ))
}

/// Feed the connection queue until the stop flag rises.
fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    connections: &Mutex<Vec<TcpStream>>,
    available: &Condvar,
    accepted: &AtomicU64,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                accepted.fetch_add(1, Ordering::Relaxed);
                connections
                    .lock()
                    .expect("connection queue poisoned")
                    .push(stream);
                available.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
    available.notify_all();
}

/// Pop the next accepted connection, or `None` once the stop flag rises.
fn next_connection(
    stop: &AtomicBool,
    connections: &Mutex<Vec<TcpStream>>,
    available: &Condvar,
) -> Option<TcpStream> {
    let mut queue = connections.lock().expect("connection queue poisoned");
    loop {
        if let Some(stream) = queue.pop() {
            return Some(stream);
        }
        if stop.load(Ordering::Acquire) {
            return None;
        }
        let (next, _) = available
            .wait_timeout(queue, POLL_INTERVAL)
            .expect("connection queue poisoned");
        queue = next;
    }
}

/// Serve one connection until EOF, error, or `shutdown`.
fn serve_connection(
    stream: TcpStream,
    handle: &mut SessionHandle,
    stop: &AtomicBool,
    answered: &AtomicU64,
) -> std::io::Result<()> {
    // Readers must notice a shutdown triggered on another connection, so
    // reads time out and re-check the stop flag instead of blocking
    // indefinitely on an idle client. Partial lines survive timeouts in
    // `pending` (`read_until` keeps bytes read before an error).
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut pending: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let at_eof = match reader.read_until(b'\n', &mut pending) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        if !at_eof && pending.last() != Some(&b'\n') {
            // Mid-line (the delimiter hasn't arrived yet): keep reading.
            continue;
        }
        if pending.is_empty() {
            return Ok(()); // clean EOF
        }
        // Invalid UTF-8 becomes replacement characters: a garbage line
        // must produce a protocol error response, not kill the reader.
        let line = String::from_utf8_lossy(&pending).trim().to_string();
        pending.clear();
        if line == "shutdown" {
            stop.store(true, Ordering::Release);
            writeln!(writer, "shutting down")?;
            return Ok(());
        }
        answered.fetch_add(1, Ordering::Relaxed);
        match handle.command(&line) {
            Ok(response) if response.is_empty() => {}
            Ok(response) => writeln!(writer, "{response}")?,
            Err(message) => writeln!(writer, "error: {message}")?,
        }
        if at_eof {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::serve_provider;
    use gralmatch_core::ShardPlan;
    use gralmatch_datagen::{generate, GenerationConfig};
    use gralmatch_records::RecordId;

    fn securities() -> Vec<SecurityRecord> {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 40;
        generate(&config).unwrap().securities.records().to_vec()
    }

    fn session(records: Vec<SecurityRecord>) -> ServeSession {
        ServeSession::bootstrap(records, ShardPlan::new(2), serve_provider(None))
            .unwrap()
            .0
    }

    #[test]
    fn handles_serve_reads_and_route_writes_to_the_drain() {
        let records = securities();
        let held_out = records.last().unwrap().clone();
        let held_id = held_out.id;
        let mut session = session(records[..records.len() - 1].to_vec());
        let (queue, handle) = session_channel(&session);

        let outcome = std::thread::scope(|scope| {
            let reader = scope.spawn(move || {
                let mut handle = handle;
                assert_eq!(handle.snapshot().epoch(), 1);
                let response = handle.command("group_of 0").unwrap();
                assert!(response.contains("record 0"), "{response}");
                assert!(handle.command("nonsense").is_err());

                // A write through the queue becomes visible to another
                // handle's next snapshot load.
                let mut other = handle.clone();
                let outcome = handle
                    .apply_batch(UpsertBatch::inserting(vec![held_out]))
                    .unwrap();
                assert_eq!(other.snapshot().epoch(), outcome.epoch);
                assert!(other.snapshot().group_of(held_id).is_some());
                outcome
            });
            // This thread is the writer.
            assert_eq!(queue.drain(&mut session), 1);
            reader.join().expect("reader panicked")
        });
        assert_eq!(outcome.epoch, 2);
        assert!(outcome.snapshot_publish_seconds >= 0.0);
        assert!(session.engine().group_of(held_id).is_some());
        assert_eq!(session.stats().batches_applied, 2);
    }

    #[test]
    fn rejected_writes_report_errors_without_killing_the_drain() {
        let records = securities();
        let live = records[0].clone();
        let mut session = session(records);
        let (queue, handle) = session_channel(&session);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let handle = handle;
                // Insert of a live id: rejected, writer stays up.
                let err = handle
                    .apply_batch(UpsertBatch::inserting(vec![live.clone()]))
                    .unwrap_err();
                assert!(err.contains("apply failed"), "{err}");
                let err = handle
                    .apply_batch(UpsertBatch::inserting(vec![live]))
                    .unwrap_err();
                assert!(err.contains("apply failed"), "{err}");
            });
            assert_eq!(queue.drain(&mut session), 2);
        });
        assert_eq!(session.stats().batches_applied, 1);
    }

    #[test]
    fn tcp_round_trip_with_concurrent_clients() {
        let records = securities();
        let expected_stats_live = records.len();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let session = session(records);

        fn client(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<String> {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            lines
                .iter()
                .map(|line| {
                    writeln!(writer, "{line}").unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).unwrap();
                    response.trim_end().to_string()
                })
                .collect()
        }

        // The session is not `Send` (the writer stays on this thread), so
        // the *clients* run on spawned threads while serve_tcp blocks here.
        let clients = std::thread::spawn(move || {
            let lookups: Vec<_> = (0..2)
                .map(|_| {
                    std::thread::spawn(move || {
                        client(
                            addr,
                            &["group_of 0", "members 0", "stats", "bogus", "{broken json"],
                        )
                    })
                })
                .collect();
            let concurrent: Vec<Vec<String>> =
                lookups.into_iter().map(|c| c.join().unwrap()).collect();
            // A delete over TCP, then shutdown.
            let last = client(addr, &["{\"deletes\":[0]}", "shutdown"]);
            (concurrent, last)
        });
        let (session, report) = serve_tcp(listener, session, 3).unwrap();
        let (concurrent, last) = clients.join().unwrap();

        for responses in concurrent {
            assert!(responses[0].contains("record 0"), "{responses:?}");
            assert!(
                responses[2].contains(&format!("{expected_stats_live} live records")),
                "{responses:?}"
            );
            assert!(responses[3].starts_with("error: "), "{responses:?}");
            assert!(responses[4].starts_with("error: "), "{responses:?}");
        }
        assert!(last[0].contains("applied +0~0-1"), "{last:?}");
        assert_eq!(last[1], "shutting down");
        assert_eq!(session.engine().group_of(RecordId(0)), None);
        assert_eq!(report.connections, 3);
        assert!(report.requests >= 11, "{report:?}");
    }
}
