//! Concurrent multi-tenant serving: the calling thread as single writer
//! owning the [`HostSession`], N reader threads answering lookups from
//! per-tenant epoch snapshots, and a line-protocol TCP front-end over
//! `std::net`.
//!
//! ## Architecture
//!
//! ```text
//!   per-tenant write queues (mpsc)  ┌────────────────────────────────┐
//!  ───────────────────────────────▶│ writer (caller thread):        │
//!  ───────────────────────────────▶│  round-robin drain →           ├──▶ one Published<GroupSnapshot>
//!  ───────────────────────────────▶│  HostSession::execute(tenant)  │    per tenant (Arc swap)
//!                                  └────────────────────────────────┘        │
//!   TCP clients ──▶ acceptor ──▶ connection queue ──▶ N readers on a         ▼
//!                     WorkerPool, each holding a HostHandle: one PublishedReader
//!                     per tenant — lookups never wait on the writer or each other
//! ```
//!
//! The split is strict: only the writer thread touches the engines (the
//! scorer providers and blockers are not `Send`, so the session never
//! migrates — the *readers* are the spawned threads). Each reader holds
//! a [`HostHandle`] — one [`PublishedReader`] per tenant — and serves
//! `group_of`/`members`/`stats` from whichever epoch is current for the
//! addressed tenant; a batch mid-apply is invisible until its snapshot is
//! published, and tenants' epochs move independently. Write requests
//! arriving on a reader's connection are forwarded to the writer on the
//! addressed tenant's queue; the single drain sweeps the queues
//! round-robin (one request per tenant per sweep) so a churn-heavy
//! tenant cannot starve another tenant's writes.
//!
//! Every connection carries its own current-tenant cursor (`use <t>`),
//! starting at the host's default tenant; `<tenant>.cmd` addressing
//! works independently of the cursor.

use crate::serve::{
    coded, hello_line, lookup_response, parse_request, tenants_line, ErrorCode, HostSession,
    ServeCommand, HELP_LINE,
};
use gralmatch_core::GroupSnapshot;
use gralmatch_util::{PublishedReader, WorkerPool};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One unit of work for the writer: the tenant is implied by the queue
/// it arrives on; the reply channel carries the protocol response line.
struct WriteRequest {
    command: ServeCommand,
    reply: Sender<Result<String, String>>,
}

/// Wakes the drain when any tenant queue gains a request — `mpsc`
/// receivers cannot be waited on as a set, so senders raise this shared
/// signal after enqueueing.
struct QueueSignal {
    pending: Mutex<u64>,
    available: Condvar,
}

impl QueueSignal {
    fn new() -> Self {
        QueueSignal {
            pending: Mutex::new(0),
            available: Condvar::new(),
        }
    }

    /// Announce one enqueued request.
    fn raise(&self) {
        *self.pending.lock().expect("queue signal poisoned") += 1;
        self.available.notify_one();
    }

    /// Block until a request was announced since the last `wait` (or the
    /// timeout backstop elapses — handle drops don't raise the signal).
    fn wait(&self, timeout: Duration) {
        let mut pending = self.pending.lock().expect("queue signal poisoned");
        if *pending == 0 {
            let (next, _) = self
                .available
                .wait_timeout(pending, timeout)
                .expect("queue signal poisoned");
            pending = next;
        }
        *pending = 0;
    }
}

/// Split a session into its per-tenant write queues (drained by the
/// calling thread) and a cloneable per-reader [`HostHandle`].
/// [`WriteQueues::drain`] returns once every handle clone is dropped.
pub fn host_channel(session: &HostSession) -> (WriteQueues, HostHandle) {
    let signal = Arc::new(QueueSignal::new());
    let mut queues = Vec::new();
    let mut handles = Vec::new();
    for (name, tenant) in session.host().iter() {
        let (sender, receiver) = channel();
        queues.push((name.to_string(), receiver));
        handles.push((
            name.to_string(),
            TenantHandle {
                domain: tenant.domain(),
                reader: PublishedReader::new(tenant.snapshot_source()),
                sender,
                signal: signal.clone(),
            },
        ));
    }
    (
        WriteQueues { queues, signal },
        HostHandle {
            default_tenant: session.default_tenant().to_string(),
            tenants: handles,
        },
    )
}

/// The writer side of [`host_channel`]: the single consumer of every
/// tenant's enqueued writes.
pub struct WriteQueues {
    queues: Vec<(String, Receiver<WriteRequest>)>,
    signal: Arc<QueueSignal>,
}

impl WriteQueues {
    /// Serve writes on the current thread until every [`HostHandle`] is
    /// dropped, sweeping the tenant queues round-robin — at most one
    /// request per tenant per sweep, so no tenant's churn can starve
    /// another's writes. Returns the number of requests served; failed
    /// requests answer their sender and keep the drain running.
    pub fn drain(self, session: &mut HostSession) -> u64 {
        let mut served = 0;
        let mut open = vec![true; self.queues.len()];
        let mut remaining = self.queues.len();
        loop {
            let mut progressed = false;
            for (index, (tenant, queue)) in self.queues.iter().enumerate() {
                if !open[index] {
                    continue;
                }
                match queue.try_recv() {
                    Ok(request) => {
                        progressed = true;
                        served += 1;
                        let _ = request
                            .reply
                            .send(session.execute(tenant, &request.command));
                    }
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => {
                        open[index] = false;
                        remaining -= 1;
                    }
                }
            }
            if remaining == 0 {
                return served;
            }
            if !progressed {
                self.signal.wait(POLL_INTERVAL);
            }
        }
    }
}

/// One tenant's reader-side view: lock-free snapshot lookups plus the
/// tenant's write queue. `Send`, cheap to clone.
pub struct TenantHandle {
    domain: &'static str,
    reader: PublishedReader<GroupSnapshot>,
    sender: Sender<WriteRequest>,
    signal: Arc<QueueSignal>,
}

impl Clone for TenantHandle {
    fn clone(&self) -> Self {
        TenantHandle {
            domain: self.domain,
            reader: self.reader.clone(),
            sender: self.sender.clone(),
            signal: self.signal.clone(),
        }
    }
}

impl TenantHandle {
    /// The tenant's domain name.
    pub fn domain(&self) -> &'static str {
        self.domain
    }

    /// The tenant's current epoch snapshot (refreshes the cached `Arc`
    /// only when the writer published a new epoch).
    pub fn snapshot(&mut self) -> &Arc<GroupSnapshot> {
        self.reader.current()
    }

    /// Round-trip one writer-side command through the write queue.
    pub fn send(&self, command: ServeCommand) -> Result<String, String> {
        let (reply, responses) = channel();
        self.sender
            .send(WriteRequest { command, reply })
            .map_err(|_| coded(ErrorCode::WriterGone, "writer is gone"))?;
        self.signal.raise();
        responses
            .recv()
            .map_err(|_| coded(ErrorCode::WriterGone, "writer dropped the request"))?
    }
}

/// A per-reader-thread view of the whole host: one [`TenantHandle`] per
/// tenant, addressed by name. `Send`, cheap to clone — one per thread,
/// with a per-connection tenant cursor passed into [`command`](Self::command).
#[derive(Clone)]
pub struct HostHandle {
    tenants: Vec<(String, TenantHandle)>,
    default_tenant: String,
}

impl HostHandle {
    /// The default tenant's name (a fresh connection's cursor).
    pub fn default_tenant(&self) -> &str {
        &self.default_tenant
    }

    /// Registered tenant names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.tenants.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// One tenant's handle.
    pub fn tenant(&mut self, name: &str) -> Option<&mut TenantHandle> {
        self.tenants
            .iter_mut()
            .find(|(tenant, _)| tenant == name)
            .map(|(_, handle)| handle)
    }

    fn unknown(name: &str) -> String {
        coded(
            ErrorCode::UnknownTenant,
            format!("no tenant named {name:?} (try `tenants`)"),
        )
    }

    /// Execute one protocol line with `cursor` as the connection's
    /// current tenant: session commands and lookups answer on this
    /// thread from the addressed tenant's current snapshot; writes
    /// round-trip through the writer on that tenant's queue.
    pub fn command(&mut self, cursor: &mut String, line: &str) -> Result<String, String> {
        let Some(request) = parse_request(line)? else {
            return Ok(String::new());
        };
        match &request.command {
            ServeCommand::Hello => return Ok(hello_line(self.tenants.len(), &self.default_tenant)),
            ServeCommand::Ping => return Ok("pong".to_string()),
            ServeCommand::Help => return Ok(HELP_LINE.to_string()),
            ServeCommand::Tenants => {
                let rows: Vec<(String, &'static str, u64)> = self
                    .tenants
                    .iter_mut()
                    .map(|(name, handle)| {
                        (name.clone(), handle.domain, handle.reader.current().epoch())
                    })
                    .collect();
                return Ok(tenants_line(
                    rows.iter()
                        .map(|(name, domain, epoch)| (name.as_str(), *domain, *epoch)),
                ));
            }
            ServeCommand::Use(name) => {
                return if self.tenants.iter().any(|(tenant, _)| tenant == name) {
                    cursor.clone_from(name);
                    Ok(format!("using {name}"))
                } else {
                    Err(Self::unknown(name))
                };
            }
            _ => {}
        }
        // `model <tenant> <path>` routes on its own tenant argument; all
        // other tenant-scoped commands on the prefix or the cursor.
        let route = match &request.command {
            ServeCommand::Model { tenant, .. } => tenant.clone(),
            _ => request.tenant.clone().unwrap_or_else(|| cursor.clone()),
        };
        let Some(handle) = self.tenant(&route) else {
            return Err(Self::unknown(&route));
        };
        if request.command.is_lookup() {
            return lookup_response(&route, handle.reader.current(), &request.command)
                .expect("is_lookup commands are snapshot-answerable");
        }
        handle.send(request.command)
    }
}

/// How the TCP front-end ran: connections served and requests answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines answered (errors included).
    pub requests: u64,
}

/// Poll interval of the accept loop, the per-connection read timeout, and
/// the drain's wakeup backstop — the latency bound on noticing a
/// `shutdown`.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Serve the line protocol on `listener` until a client sends
/// `shutdown`: the calling thread is the single writer draining the
/// per-tenant write queues; an acceptor plus `readers` reader threads
/// run on a [`WorkerPool`], each reader pulling accepted connections
/// from a shared queue and answering request lines from its own
/// per-tenant epoch-snapshot views. Responses are one line per request
/// line; protocol failures answer `error: <code>: <message>` and keep
/// the connection open.
///
/// Returns the session (persist tenant states with
/// [`HostSession::save_state`]) and a run report.
pub fn serve_tcp(
    listener: TcpListener,
    mut session: HostSession,
    readers: usize,
) -> std::io::Result<(HostSession, ServeReport)> {
    listener.set_nonblocking(true)?;
    let (queues, handle) = host_channel(&session);
    let stop = AtomicBool::new(false);
    let connections: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
    let available = Condvar::new();
    let accepted = AtomicU64::new(0);
    let answered = AtomicU64::new(0);

    std::thread::scope(|scope| {
        {
            // Worker 0 accepts; workers 1..=readers serve connections.
            // When broadcast returns every handle clone is dropped, which
            // ends the writer's drain below.
            let (stop, connections, available) = (&stop, &connections, &available);
            let (accepted, answered, listener) = (&accepted, &answered, &listener);
            let base = handle;
            scope.spawn(move || {
                WorkerPool::new(readers.max(1) + 1).broadcast(|worker| {
                    if worker == 0 {
                        accept_loop(listener, stop, connections, available, accepted);
                        return;
                    }
                    let mut handle = base.clone();
                    while let Some(stream) = next_connection(stop, connections, available) {
                        // A dropped connection only ends that client.
                        let _ = serve_connection(stream, &mut handle, stop, answered);
                    }
                });
            });
        }
        queues.drain(&mut session);
    });

    Ok((
        session,
        ServeReport {
            connections: accepted.load(Ordering::Relaxed),
            requests: answered.load(Ordering::Relaxed),
        },
    ))
}

/// Feed the connection queue until the stop flag rises.
fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    connections: &Mutex<Vec<TcpStream>>,
    available: &Condvar,
    accepted: &AtomicU64,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                accepted.fetch_add(1, Ordering::Relaxed);
                connections
                    .lock()
                    .expect("connection queue poisoned")
                    .push(stream);
                available.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
    available.notify_all();
}

/// Pop the next accepted connection, or `None` once the stop flag rises.
fn next_connection(
    stop: &AtomicBool,
    connections: &Mutex<Vec<TcpStream>>,
    available: &Condvar,
) -> Option<TcpStream> {
    let mut queue = connections.lock().expect("connection queue poisoned");
    loop {
        if let Some(stream) = queue.pop() {
            return Some(stream);
        }
        if stop.load(Ordering::Acquire) {
            return None;
        }
        let (next, _) = available
            .wait_timeout(queue, POLL_INTERVAL)
            .expect("connection queue poisoned");
        queue = next;
    }
}

/// Serve one connection until EOF, error, or `shutdown`. Each connection
/// gets its own tenant cursor, starting at the host's default tenant.
fn serve_connection(
    stream: TcpStream,
    handle: &mut HostHandle,
    stop: &AtomicBool,
    answered: &AtomicU64,
) -> std::io::Result<()> {
    // Readers must notice a shutdown triggered on another connection, so
    // reads time out and re-check the stop flag instead of blocking
    // indefinitely on an idle client. Partial lines survive timeouts in
    // `pending` (`read_until` keeps bytes read before an error).
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut pending: Vec<u8> = Vec::new();
    let mut cursor = handle.default_tenant().to_string();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let at_eof = match reader.read_until(b'\n', &mut pending) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        if !at_eof && pending.last() != Some(&b'\n') {
            // Mid-line (the delimiter hasn't arrived yet): keep reading.
            continue;
        }
        if pending.is_empty() {
            return Ok(()); // clean EOF
        }
        // Invalid UTF-8 becomes replacement characters: a garbage line
        // must produce a protocol error response, not kill the reader.
        let line = String::from_utf8_lossy(&pending).trim().to_string();
        pending.clear();
        if line == "shutdown" {
            stop.store(true, Ordering::Release);
            writeln!(writer, "shutting down")?;
            return Ok(());
        }
        answered.fetch_add(1, Ordering::Relaxed);
        match handle.command(&mut cursor, &line) {
            Ok(response) if response.is_empty() => {}
            Ok(response) => writeln!(writer, "{response}")?,
            Err(message) => writeln!(writer, "error: {message}")?,
        }
        if at_eof {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::bootstrap_tenant;
    use gralmatch_core::{EngineHost, ShardPlan, UpsertBatch};
    use gralmatch_datagen::{generate, FinancialDataset, GenerationConfig};
    use gralmatch_records::{RecordId, SecurityRecord};
    use gralmatch_util::ToJson;

    fn financial() -> FinancialDataset {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 40;
        generate(&config).unwrap()
    }

    fn single_session(records: Vec<SecurityRecord>) -> HostSession {
        let (tenant, _) = bootstrap_tenant(records, ShardPlan::new(2), None).unwrap();
        HostSession::single("sec", Box::new(tenant)).unwrap()
    }

    /// Securities + companies from the same synthetic universe, as two
    /// tenants.
    fn dual_session(data: &FinancialDataset) -> HostSession {
        let mut host = EngineHost::new();
        let (sec, _) =
            bootstrap_tenant(data.securities.records().to_vec(), ShardPlan::new(2), None).unwrap();
        host.add_tenant("sec", Box::new(sec)).unwrap();
        let (comp, _) =
            bootstrap_tenant(data.companies.records().to_vec(), ShardPlan::new(2), None).unwrap();
        host.add_tenant("comp", Box::new(comp)).unwrap();
        HostSession::new(host).unwrap()
    }

    #[test]
    fn handles_serve_reads_and_route_writes_to_the_drain() {
        let records = financial().securities.records().to_vec();
        let held_out = records.last().unwrap().clone();
        let held_id = held_out.id;
        let mut session = single_session(records[..records.len() - 1].to_vec());
        let (queues, handle) = host_channel(&session);

        std::thread::scope(|scope| {
            let reader = scope.spawn(move || {
                let mut handle = handle;
                let mut cursor = handle.default_tenant().to_string();
                assert_eq!(handle.tenant("sec").unwrap().snapshot().epoch(), 1);
                let response = handle.command(&mut cursor, "group_of 0").unwrap();
                assert!(response.contains("record 0"), "{response}");
                assert!(handle.command(&mut cursor, "nonsense").is_err());

                // A write through the queue becomes visible to another
                // handle's next snapshot load.
                let mut other = handle.clone();
                let insert = UpsertBatch::inserting(vec![held_out]);
                let response = handle
                    .command(&mut cursor, &insert.to_json().to_compact_string())
                    .unwrap();
                assert!(response.contains("applied +1~0-0"), "{response}");
                assert_eq!(other.tenant("sec").unwrap().snapshot().epoch(), 2);
                assert!(other
                    .tenant("sec")
                    .unwrap()
                    .snapshot()
                    .group_of(held_id)
                    .is_some());
            });
            // This thread is the writer.
            assert_eq!(queues.drain(&mut session), 1);
            reader.join().expect("reader panicked")
        });
        let tenant = session.host().tenant("sec").unwrap();
        assert!(tenant.group_of(held_id).is_some());
        assert_eq!(tenant.stats().batches_applied, 2);
        assert_eq!(session.latency("sec").unwrap().count(), 1);
    }

    #[test]
    fn rejected_writes_report_coded_errors_without_killing_the_drain() {
        let records = financial().securities.records().to_vec();
        let live = records[0].clone();
        let mut session = single_session(records);
        let (queues, handle) = host_channel(&session);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut handle = handle;
                let mut cursor = handle.default_tenant().to_string();
                // Insert of a live id: rejected with a stable code, the
                // writer stays up for the next request.
                let insert = UpsertBatch::inserting(vec![live])
                    .to_json()
                    .to_compact_string();
                let err = handle.command(&mut cursor, &insert).unwrap_err();
                assert!(err.starts_with("apply-rejected: "), "{err}");
                let err = handle.command(&mut cursor, &insert).unwrap_err();
                assert!(err.starts_with("apply-rejected: "), "{err}");
            });
            assert_eq!(queues.drain(&mut session), 2);
        });
        assert_eq!(
            session
                .host()
                .tenant("sec")
                .unwrap()
                .stats()
                .batches_applied,
            1
        );
    }

    #[test]
    fn tcp_round_trip_with_concurrent_multi_tenant_clients() {
        let data = financial();
        let expected_sec_live = data.securities.records().len();
        let expected_comp_live = data.companies.records().len();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let session = dual_session(&data);

        fn client(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<String> {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            lines
                .iter()
                .map(|line| {
                    writeln!(writer, "{line}").unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).unwrap();
                    response.trim_end().to_string()
                })
                .collect()
        }

        // The session is not `Send` (the writer stays on this thread), so
        // the *clients* run on spawned threads while serve_tcp blocks here.
        let clients = std::thread::spawn(move || {
            let lookups: Vec<_> = (0..2)
                .map(|_| {
                    std::thread::spawn(move || {
                        client(
                            addr,
                            &[
                                "hello",
                                "ping",
                                "group_of 0",
                                "comp.stats",
                                "use comp",
                                "stats",
                                "bogus",
                                "{broken json",
                                "group_of 999999",
                                "nope.stats",
                            ],
                        )
                    })
                })
                .collect();
            let concurrent: Vec<Vec<String>> =
                lookups.into_iter().map(|c| c.join().unwrap()).collect();
            // A delete on the default (securities) tenant, then shutdown.
            let last = client(addr, &["{\"deletes\":[0]}", "tenants", "shutdown"]);
            (concurrent, last)
        });
        let (session, report) = serve_tcp(listener, session, 3).unwrap();
        let (concurrent, last) = clients.join().unwrap();

        for responses in concurrent {
            assert!(responses[0].contains("protocol-version=2"), "{responses:?}");
            assert!(responses[0].contains("tenants=2"), "{responses:?}");
            assert_eq!(responses[1], "pong", "{responses:?}");
            assert!(responses[2].contains("record 0"), "{responses:?}");
            assert!(
                responses[3].contains(&format!("tenant comp: {expected_comp_live} live records")),
                "{responses:?}"
            );
            assert_eq!(responses[4], "using comp", "{responses:?}");
            assert!(
                responses[5].contains(&format!("tenant comp: {expected_comp_live} live records")),
                "{responses:?}"
            );
            assert!(
                responses[6].starts_with("error: bad-command: "),
                "{responses:?}"
            );
            assert!(
                responses[7].starts_with("error: bad-batch: "),
                "{responses:?}"
            );
            // The cursor moved to `comp`, so the miss names that tenant.
            assert!(
                responses[8].starts_with("error: unknown-record: "),
                "{responses:?}"
            );
            assert!(responses[8].contains("tenant comp"), "{responses:?}");
            assert!(
                responses[9].starts_with("error: unknown-tenant: "),
                "{responses:?}"
            );
        }
        assert!(last[0].contains("applied +0~0-1"), "{last:?}");
        // The delete bumped only the securities tenant's epoch.
        assert!(last[1].contains("sec=securities@epoch=2"), "{last:?}");
        assert!(last[1].contains("comp=companies@epoch=1"), "{last:?}");
        assert_eq!(last[2], "shutting down");
        let sec = session.host().tenant("sec").unwrap();
        assert_eq!(sec.group_of(RecordId(0)), None);
        assert_eq!(sec.stats().num_live, expected_sec_live - 1);
        assert_eq!(report.connections, 3);
        assert!(report.requests >= 22, "{report:?}");
    }
}
