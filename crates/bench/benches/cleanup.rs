//! GraLMatch Graph Cleanup runtime: full Algorithm 1 vs its sensitivity
//! variants (MEC-only, BC-only, ½γ) on prediction graphs with injected
//! false-positive bridges — the Table 4 sensitivity study's runtime side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gralmatch_core::{graph_cleanup, pre_cleanup, CleanupConfig, CleanupVariant};
use gralmatch_graph::Graph;
use gralmatch_util::SplitRng;
use std::hint::black_box;

/// A prediction graph: `groups` cliques of size 5 with `bridges` random
/// false-positive edges between consecutive groups.
fn noisy_prediction_graph(groups: usize, bridges: usize) -> Graph {
    let mut rng = SplitRng::new(42);
    let mut graph = Graph::new();
    let size = 5u32;
    for g in 0..groups as u32 {
        let base = g * size;
        for i in 0..size {
            for j in (i + 1)..size {
                graph.add_edge(base + i, base + j);
            }
        }
    }
    for _ in 0..bridges {
        let g = rng.next_below(groups - 1) as u32;
        let a = g * size + rng.next_below(size as usize) as u32;
        let b = (g + 1) * size + rng.next_below(size as usize) as u32;
        graph.add_edge(a, b);
    }
    graph
}

fn bench_cleanup(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_cleanup");
    for &(groups, bridges) in &[(20usize, 10usize), (100, 60), (400, 260)] {
        let label = format!("{}groups_{}bridges", groups, bridges);
        for (variant, name) in [
            (CleanupVariant::Full, "full"),
            (CleanupVariant::MinCutOnly, "mec_only"),
            (CleanupVariant::BetweennessOnly, "bc_only"),
            (CleanupVariant::HalfGamma, "half_gamma"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, &label),
                &(groups, bridges),
                |b, &(groups, bridges)| {
                    b.iter_batched(
                        || noisy_prediction_graph(groups, bridges),
                        |mut graph| {
                            let config = CleanupConfig::new(25, 5).variant(variant);
                            black_box(graph_cleanup(&mut graph, &config))
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }

    group.bench_function("pre_cleanup_hairball", |b| {
        b.iter_batched(
            || noisy_prediction_graph(200, 300),
            |mut graph| black_box(pre_cleanup(&mut graph, 50, |_, _| true)),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cleanup
}
criterion_main!(benches);
