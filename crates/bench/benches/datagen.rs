//! Dataset-generation throughput: the paper notes generation is linear in
//! the number of record groups; this bench verifies it stays that way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gralmatch_datagen::{generate, generate_wdc, GenerationConfig, WdcConfig};
use std::hint::black_box;

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    for &entities in &[500usize, 2_000, 8_000] {
        group.throughput(Throughput::Elements(entities as u64));
        group.bench_with_input(
            BenchmarkId::new("financial", entities),
            &entities,
            |b, &entities| {
                let mut config = GenerationConfig::synthetic_full();
                config.num_entities = entities;
                b.iter(|| black_box(generate(&config).expect("valid")));
            },
        );
    }
    group.bench_function("wdc_default", |b| {
        b.iter(|| black_box(generate_wdc(&WdcConfig::default())));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_datagen
}
criterion_main!(benches);
