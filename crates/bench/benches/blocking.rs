//! Blocking throughput (Table 2's candidate generation stage).

use criterion::{criterion_group, criterion_main, Criterion};
use gralmatch_blocking::{
    id_overlap_companies, id_overlap_securities, token_overlap, CandidateSet, TokenOverlapConfig,
};
use gralmatch_datagen::{generate, GenerationConfig};
use std::hint::black_box;

fn bench_blocking(c: &mut Criterion) {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 1_000;
    let data = generate(&config).expect("valid config");
    let companies = data.companies.records();
    let securities = data.securities.records();

    let mut group = c.benchmark_group("blocking");
    group.bench_function("id_overlap_securities_5k", |b| {
        b.iter(|| {
            let mut set = CandidateSet::new();
            id_overlap_securities(black_box(securities), &mut set);
            black_box(set.len())
        });
    });
    group.bench_function("id_overlap_companies_4k", |b| {
        b.iter(|| {
            let mut set = CandidateSet::new();
            id_overlap_companies(black_box(companies), black_box(securities), &mut set);
            black_box(set.len())
        });
    });
    group.bench_function("token_overlap_companies_4k", |b| {
        b.iter(|| {
            let mut set = CandidateSet::new();
            token_overlap(
                black_box(companies),
                &TokenOverlapConfig::default(),
                &mut set,
            );
            black_box(set.len())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_blocking
}
criterion_main!(benches);
