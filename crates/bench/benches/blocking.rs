//! Blocking throughput (Table 2's candidate generation stage).

use criterion::{criterion_group, criterion_main, Criterion};
use gralmatch_blocking::{
    Blocker, BlockingContext, CandidateSet, CompanyIdOverlap, SecurityIdOverlap, TokenOverlap,
    TokenOverlapConfig,
};
use gralmatch_datagen::{generate, GenerationConfig};
use gralmatch_util::WorkerPool;
use std::hint::black_box;

fn bench_blocking(c: &mut Criterion) {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 1_000;
    let data = generate(&config).expect("valid config");
    let companies = data.companies.records();
    let securities = data.securities.records();
    let sequential = BlockingContext::sequential();

    let mut group = c.benchmark_group("blocking");
    group.bench_function("id_overlap_securities_5k", |b| {
        b.iter(|| {
            let mut set = CandidateSet::new();
            SecurityIdOverlap.block(black_box(securities), &sequential, &mut set);
            black_box(set.len())
        });
    });
    group.bench_function("id_overlap_companies_4k", |b| {
        b.iter(|| {
            let mut set = CandidateSet::new();
            CompanyIdOverlap {
                securities: black_box(securities),
            }
            .block(black_box(companies), &sequential, &mut set);
            black_box(set.len())
        });
    });
    group.bench_function("token_overlap_companies_4k", |b| {
        b.iter(|| {
            let mut set = CandidateSet::new();
            TokenOverlap::new(TokenOverlapConfig::default()).block(
                black_box(companies),
                &sequential,
                &mut set,
            );
            black_box(set.len())
        });
    });
    // The parallelized hot path: per-record overlap counting on the pool.
    let parallel = BlockingContext::with_pool(WorkerPool::new(
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    ));
    group.bench_function("token_overlap_companies_4k_parallel", |b| {
        b.iter(|| {
            let mut set = CandidateSet::new();
            TokenOverlap::new(TokenOverlapConfig::default()).block(
                black_box(companies),
                &parallel,
                &mut set,
            );
            black_box(set.len())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_blocking
}
criterion_main!(benches);
