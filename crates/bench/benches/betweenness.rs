//! Scaling of Brandes edge betweenness (Algorithm 1 phase 2's inner loop).
//!
//! O(n·m) per component; the γ threshold exists precisely because running
//! this on big components is slow — the bench shows the growth curve that
//! justifies γ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gralmatch_graph::{edge_betweenness, Graph, Subgraph};
use gralmatch_util::SplitRng;
use std::hint::black_box;

/// Random connected graph: tree + extra edges, deterministic per size.
fn random_graph(n: usize, extra: usize) -> Subgraph {
    let mut rng = SplitRng::new(n as u64);
    let mut graph = Graph::with_nodes(n);
    for child in 1..n as u32 {
        let parent = rng.next_below(child as usize) as u32;
        graph.add_edge(parent, child);
    }
    for _ in 0..extra {
        let a = rng.next_below(n) as u32;
        let b = rng.next_below(n) as u32;
        if a != b {
            graph.add_edge(a, b);
        }
    }
    let nodes: Vec<u32> = (0..n as u32).collect();
    Subgraph::induce(&graph, &nodes)
}

fn bench_betweenness(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_betweenness");
    for &n in &[16usize, 64, 256, 1024] {
        let sub = random_graph(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sub, |b, sub| {
            b.iter(|| black_box(edge_betweenness(black_box(sub))));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_betweenness
}
criterion_main!(benches);
