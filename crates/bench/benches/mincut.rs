//! Ablation: Stoer–Wagner vs flow-based global min cut.
//!
//! The paper notes both phases of Algorithm 1 are O(mn) worst case but the
//! min-cut tends to run faster in practice; this bench quantifies the
//! crossover between the two implementations on barbell components (two
//! dense groups joined by a false-positive bridge — the canonical cleanup
//! input).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gralmatch_graph::{mincut::global_min_cut_flow, mincut::stoer_wagner, Graph, Subgraph};
use std::hint::black_box;

/// Two k-cliques joined by one bridge.
fn barbell(k: usize) -> Subgraph {
    let mut graph = Graph::new();
    for base in [0u32, k as u32] {
        for i in 0..k as u32 {
            for j in (i + 1)..k as u32 {
                graph.add_edge(base + i, base + j);
            }
        }
    }
    graph.add_edge(k as u32 - 1, k as u32);
    let nodes: Vec<u32> = (0..2 * k as u32).collect();
    Subgraph::induce(&graph, &nodes)
}

fn bench_mincut(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_min_cut");
    for &k in &[8usize, 16, 32, 64] {
        let sub = barbell(k);
        group.bench_with_input(BenchmarkId::new("stoer_wagner", 2 * k), &sub, |b, sub| {
            b.iter(|| black_box(stoer_wagner(black_box(sub))));
        });
        group.bench_with_input(BenchmarkId::new("flow_based", 2 * k), &sub, |b, sub| {
            b.iter(|| black_box(global_min_cut_flow(black_box(sub))));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mincut
}
criterion_main!(benches);
