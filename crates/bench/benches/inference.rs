//! Pairwise inference throughput (Table 4's dominant cost).
//!
//! Compares the encoder variants (plain-128 vs ditto-128 vs ditto-256 —
//! longer streams mean more features per pair) and sequential vs parallel
//! scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gralmatch_datagen::{generate, GenerationConfig};
use gralmatch_lm::{
    featurize, score_pairs_with, CompiledDataset, CompiledScorer, FeatureConfig, FeatureScratch,
    LogisticModel, MatcherScorer, ModelSpec, PairFeatures, TrainedMatcher,
};
use gralmatch_records::RecordId;
use gralmatch_records::RecordPair;
use gralmatch_util::WorkerPool;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mut config = GenerationConfig::synthetic_full();
    config.num_entities = 400;
    let data = generate(&config).expect("valid config");
    let securities = data.securities.records();
    let features = FeatureConfig::default();
    let matcher = TrainedMatcher::new(LogisticModel::new(features.dim()), features);

    // A fixed pair workload.
    let pairs: Vec<RecordPair> = (0..securities.len() as u32 - 1)
        .map(|i| RecordPair::new(RecordId(i), RecordId(i + 1)))
        .collect();

    let mut group = c.benchmark_group("inference");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    for spec in [
        ModelSpec::DistilBert128All,
        ModelSpec::Ditto128,
        ModelSpec::Ditto256,
    ] {
        let encoded = spec.encode_records(securities);
        group.bench_with_input(
            BenchmarkId::new("sequential", spec.display_name()),
            &encoded,
            |b, encoded| {
                let scorer = MatcherScorer::new(&matcher, encoded);
                let pool = WorkerPool::new(1);
                b.iter(|| black_box(score_pairs_with(&scorer, &pairs, &pool)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel4", spec.display_name()),
            &encoded,
            |b, encoded| {
                let scorer = MatcherScorer::new(&matcher, encoded);
                let pool = WorkerPool::new(4);
                b.iter(|| black_box(score_pairs_with(&scorer, &pairs, &pool)));
            },
        );
        // The compiled path: same scores, interned sorted-merge
        // featurization instead of per-pair hashing.
        let compiled = CompiledDataset::compile(&encoded, &features);
        group.bench_with_input(
            BenchmarkId::new("compiled_sequential", spec.display_name()),
            &compiled,
            |b, compiled| {
                let scorer = CompiledScorer::new(&matcher, compiled);
                let pool = WorkerPool::new(1);
                b.iter(|| black_box(score_pairs_with(&scorer, &pairs, &pool)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_parallel4", spec.display_name()),
            &compiled,
            |b, compiled| {
                let scorer = CompiledScorer::new(&matcher, compiled);
                let pool = WorkerPool::new(4);
                b.iter(|| black_box(score_pairs_with(&scorer, &pairs, &pool)));
            },
        );
    }

    // Featurization microbench: reference vs compiled on one pair.
    let encoded = ModelSpec::DistilBert128All.encode_records(securities);
    group.bench_function("featurize_one_pair", |b| {
        b.iter(|| black_box(featurize(&encoded[0], &encoded[1], &features)));
    });
    let compiled = CompiledDataset::compile(&encoded, &features);
    group.bench_function("featurize_one_pair_compiled", |b| {
        let mut scratch = FeatureScratch::default();
        let mut out = PairFeatures::default();
        b.iter(|| {
            compiled.featurize_into(0, 1, &mut scratch, &mut out);
            black_box(&out);
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
