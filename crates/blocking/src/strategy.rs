//! Composable blocking strategies.
//!
//! Table 2's per-dataset blocking recipes used to be bespoke free functions
//! wired into each pipeline copy. The [`BlockingStrategy`] trait turns a
//! recipe into a *declarative list of strategy values* — companies run
//! `[CompanyIdOverlap, TokenOverlap]`, securities `[SecurityIdOverlap,
//! IssuerMatch]`, products `[TokenOverlap]` — which the generic blocking
//! stage folds into one provenance-tagged [`CandidateSet`]. New workloads
//! compose their own lists (or implement the trait) without touching the
//! engine.
//!
//! Strategies borrow whatever side context they need (companies reach
//! *through* their securities' codes; issuer match needs the company-level
//! group assignment), so building a list is free of copies.

use crate::candidates::{BlockingKind, CandidateSet};
use crate::id_overlap::{id_overlap_companies, id_overlap_securities};
use crate::issuer_match::issuer_match;
use crate::sorted_neighborhood::{sorted_neighborhood, SortedNeighborhoodConfig};
use crate::token_overlap::{token_overlap, TokenOverlapConfig};
use gralmatch_records::{CompanyRecord, Record, RecordId, SecurityRecord};
use gralmatch_util::FxHashMap;

/// One blocking recipe step over records of type `R`.
pub trait BlockingStrategy<R: Record>: Sync {
    /// Provenance flag recorded for pairs this strategy proposes.
    fn kind(&self) -> BlockingKind;

    /// Short label for traces and diagnostics.
    fn name(&self) -> &'static str;

    /// Propose candidate pairs into `out` (merging provenance on duplicates).
    fn block(&self, records: &[R], out: &mut CandidateSet);
}

/// Fold a strategy list into one candidate set.
pub fn run_strategies<R: Record>(
    records: &[R],
    strategies: &[Box<dyn BlockingStrategy<R> + '_>],
) -> CandidateSet {
    let mut out = CandidateSet::new();
    for strategy in strategies {
        strategy.block(records, &mut out);
    }
    out
}

/// Token-Overlap blocking (Table 2, blocking 2) for any record type.
#[derive(Debug, Clone, Default)]
pub struct TokenOverlap {
    /// Top-n / DF-cut / overlap-floor parameters.
    pub config: TokenOverlapConfig,
}

impl TokenOverlap {
    /// Strategy with the given parameters.
    pub fn new(config: TokenOverlapConfig) -> Self {
        TokenOverlap { config }
    }
}

impl<R: Record + Sync> BlockingStrategy<R> for TokenOverlap {
    fn kind(&self) -> BlockingKind {
        BlockingKind::TokenOverlap
    }

    fn name(&self) -> &'static str {
        "token-overlap"
    }

    fn block(&self, records: &[R], out: &mut CandidateSet) {
        token_overlap(records, &self.config, out);
    }
}

/// ID-Overlap blocking for security records (shared identifier codes).
#[derive(Debug, Clone, Copy, Default)]
pub struct SecurityIdOverlap;

impl BlockingStrategy<SecurityRecord> for SecurityIdOverlap {
    fn kind(&self) -> BlockingKind {
        BlockingKind::IdOverlap
    }

    fn name(&self) -> &'static str {
        "id-overlap"
    }

    fn block(&self, records: &[SecurityRecord], out: &mut CandidateSet) {
        id_overlap_securities(records, out);
    }
}

/// ID-Overlap blocking for companies, matching through the identifier codes
/// of the securities each company issues (plus its own LEIs).
#[derive(Debug, Clone, Copy)]
pub struct CompanyIdOverlap<'a> {
    /// The security universe the companies' `securities` ids point into.
    pub securities: &'a [SecurityRecord],
}

impl BlockingStrategy<CompanyRecord> for CompanyIdOverlap<'_> {
    fn kind(&self) -> BlockingKind {
        BlockingKind::IdOverlap
    }

    fn name(&self) -> &'static str {
        "id-overlap"
    }

    fn block(&self, records: &[CompanyRecord], out: &mut CandidateSet) {
        id_overlap_companies(records, self.securities, out);
    }
}

/// Issuer-Match blocking (securities only): securities of co-grouped
/// issuers become candidates.
#[derive(Debug, Clone, Copy)]
pub struct IssuerMatch<'a> {
    /// Company record id → matched-group id (output of a company matching).
    pub company_group_of: &'a FxHashMap<RecordId, u32>,
}

impl BlockingStrategy<SecurityRecord> for IssuerMatch<'_> {
    fn kind(&self) -> BlockingKind {
        BlockingKind::IssuerMatch
    }

    fn name(&self) -> &'static str {
        "issuer-match"
    }

    fn block(&self, records: &[SecurityRecord], out: &mut CandidateSet) {
        issuer_match(records, self.company_group_of, out);
    }
}

/// Sorted-neighborhood baseline (not part of the paper's recipes).
#[derive(Debug, Clone, Default)]
pub struct SortedNeighborhood {
    /// Window parameters.
    pub config: SortedNeighborhoodConfig,
}

impl<R: Record + Sync> BlockingStrategy<R> for SortedNeighborhood {
    fn kind(&self) -> BlockingKind {
        BlockingKind::SortedNeighborhood
    }

    fn name(&self) -> &'static str {
        "sorted-neighborhood"
    }

    fn block(&self, records: &[R], out: &mut CandidateSet) {
        sorted_neighborhood(records, &self.config, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{IdCode, IdKind, SourceId};

    fn security(id: u32, source: u16, issuer: u32, code: &str) -> SecurityRecord {
        SecurityRecord::new(RecordId(id), SourceId(source), "S ORD", RecordId(issuer))
            .with_code(IdCode::new(IdKind::Isin, code))
    }

    #[test]
    fn strategy_list_merges_provenance() {
        let securities = vec![
            security(0, 0, 10, "AAA"),
            security(1, 1, 11, "AAA"),
            security(2, 2, 12, "BBB"),
        ];
        let groups: FxHashMap<RecordId, u32> =
            [(RecordId(10), 0), (RecordId(11), 0)].into_iter().collect();
        let strategies: Vec<Box<dyn BlockingStrategy<SecurityRecord>>> = vec![
            Box::new(SecurityIdOverlap),
            Box::new(IssuerMatch {
                company_group_of: &groups,
            }),
        ];
        let candidates = run_strategies(&securities, &strategies);
        let pair = gralmatch_records::RecordPair::new(RecordId(0), RecordId(1));
        // Both strategies proposed (0,1): provenance carries both flags.
        assert!(candidates.from_blocking(pair, BlockingKind::IdOverlap));
        assert!(candidates.from_blocking(pair, BlockingKind::IssuerMatch));
        assert_eq!(candidates.len(), 1);
    }

    #[test]
    fn empty_strategy_list_yields_empty_set() {
        let securities = vec![security(0, 0, 10, "AAA")];
        let strategies: Vec<Box<dyn BlockingStrategy<SecurityRecord>>> = Vec::new();
        assert!(run_strategies(&securities, &strategies).is_empty());
    }

    #[test]
    fn names_and_kinds_align() {
        assert_eq!(
            BlockingStrategy::<SecurityRecord>::kind(&SecurityIdOverlap),
            BlockingKind::IdOverlap
        );
        assert_eq!(
            BlockingStrategy::<SecurityRecord>::name(&TokenOverlap::default()),
            "token-overlap"
        );
    }
}
