//! The unified [`Blocker`] trait and recipe execution.
//!
//! Table 2's per-dataset blocking recipes used to be bespoke free functions
//! wired into each pipeline copy. Every strategy now implements the one
//! [`Blocker`] trait — companies run `[CompanyIdOverlap, TokenOverlap]`,
//! securities `[SecurityIdOverlap, IssuerMatch]`, products `[TokenOverlap]`
//! — so recipes are *declarative lists of trait objects* the blocking stage
//! dispatches uniformly: [`run_blockers`] executes independent recipes
//! concurrently on the shared worker pool and folds their outputs into one
//! provenance-tagged [`CandidateSet`]. New workloads compose their own
//! lists (or implement the trait) without touching the engine.
//!
//! Strategies borrow whatever side context they need (companies reach
//! *through* their securities' codes; issuer match needs the company-level
//! group assignment), so building a list is free of copies. The records
//! slice handed to [`Blocker::block`] may be any subset of a dataset — a
//! shard, a delta batch — as long as side context (e.g. the security
//! universe) stays addressable; blockers emit global record ids.

use crate::candidates::{BlockingKind, CandidateSet};
use gralmatch_records::Record;
use gralmatch_util::WorkerPool;

/// Execution context handed to every blocker: the worker pool shared with
/// the rest of the pipeline run, so parallel blockers (token overlap's
/// per-record counting) scale with the same knob as pairwise inference.
#[derive(Debug, Clone, Copy)]
pub struct BlockingContext {
    /// Worker pool for parallel steps inside a blocker.
    pub pool: WorkerPool,
}

impl BlockingContext {
    /// Single-worker context (deterministic sequential execution).
    pub fn sequential() -> Self {
        BlockingContext {
            pool: WorkerPool::new(1),
        }
    }

    /// Context sharing an existing pool.
    pub fn with_pool(pool: WorkerPool) -> Self {
        BlockingContext { pool }
    }
}

impl Default for BlockingContext {
    fn default() -> Self {
        BlockingContext::sequential()
    }
}

/// One blocking strategy over records of type `R`.
pub trait Blocker<R: Record>: Sync {
    /// Provenance flag recorded for pairs this blocker proposes.
    fn kind(&self) -> BlockingKind;

    /// Short label for traces and diagnostics.
    fn name(&self) -> &'static str;

    /// Whether the blocker is cheap enough (hash-join style, near-linear)
    /// to re-run globally for cross-shard boundary candidates. Quadratic
    /// text blockers keep the default `false` and stay shard-local.
    fn cross_shard(&self) -> bool {
        false
    }

    /// Propose candidate pairs from `records` into `out` (merging
    /// provenance on duplicates). `records` need not be a full dataset;
    /// emitted pairs carry the records' own (global) ids.
    fn block(&self, records: &[R], ctx: &BlockingContext, out: &mut CandidateSet);
}

/// Execute a recipe into one candidate set.
///
/// With a multi-worker context and more than one blocker, independent
/// recipes run concurrently on the shared pool, each into a private set,
/// merged (provenance-ORed) at the end — the merge is commutative, so the
/// result is schedule-independent.
pub fn run_blockers<R: Record + Sync>(
    records: &[R],
    blockers: &[Box<dyn Blocker<R> + '_>],
    ctx: &BlockingContext,
) -> CandidateSet {
    if blockers.len() > 1 && ctx.pool.workers() > 1 {
        let sets = ctx.pool.map(blockers, |blocker| {
            let mut set = CandidateSet::new();
            blocker.block(records, ctx, &mut set);
            set
        });
        let mut out = CandidateSet::new();
        for set in &sets {
            out.merge(set);
        }
        out
    } else {
        let mut out = CandidateSet::new();
        for blocker in blockers {
            blocker.block(records, ctx, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id_overlap::SecurityIdOverlap;
    use crate::issuer_match::IssuerMatch;
    use crate::token_overlap::TokenOverlap;
    use gralmatch_records::{IdCode, IdKind, RecordId, SecurityRecord, SourceId};
    use gralmatch_util::FxHashMap;

    fn security(id: u32, source: u16, issuer: u32, code: &str) -> SecurityRecord {
        SecurityRecord::new(RecordId(id), SourceId(source), "S ORD", RecordId(issuer))
            .with_code(IdCode::new(IdKind::Isin, code))
    }

    fn recipe(groups: &FxHashMap<RecordId, u32>) -> Vec<Box<dyn Blocker<SecurityRecord> + '_>> {
        vec![
            Box::new(SecurityIdOverlap),
            Box::new(IssuerMatch {
                company_group_of: groups,
            }),
        ]
    }

    #[test]
    fn blocker_list_merges_provenance() {
        let securities = vec![
            security(0, 0, 10, "AAA"),
            security(1, 1, 11, "AAA"),
            security(2, 2, 12, "BBB"),
        ];
        let groups: FxHashMap<RecordId, u32> =
            [(RecordId(10), 0), (RecordId(11), 0)].into_iter().collect();
        let candidates = run_blockers(
            &securities,
            &recipe(&groups),
            &BlockingContext::sequential(),
        );
        let pair = gralmatch_records::RecordPair::new(RecordId(0), RecordId(1));
        // Both blockers proposed (0,1): provenance carries both flags.
        assert!(candidates.from_blocking(pair, BlockingKind::IdOverlap));
        assert!(candidates.from_blocking(pair, BlockingKind::IssuerMatch));
        assert_eq!(candidates.len(), 1);
    }

    #[test]
    fn concurrent_recipes_match_sequential() {
        let securities: Vec<SecurityRecord> = (0..40)
            .map(|i| security(i, (i % 4) as u16, 100 + i / 2, &format!("C{}", i / 2)))
            .collect();
        let groups: FxHashMap<RecordId, u32> =
            (0..20).map(|g| (RecordId(100 + g), g % 7)).collect();
        let sequential = run_blockers(
            &securities,
            &recipe(&groups),
            &BlockingContext::sequential(),
        );
        let concurrent = run_blockers(
            &securities,
            &recipe(&groups),
            &BlockingContext::with_pool(WorkerPool::new(4)),
        );
        assert_eq!(sequential.pairs_sorted(), concurrent.pairs_sorted());
        for (pair, flags) in sequential.iter() {
            assert_eq!(concurrent.provenance(pair), flags);
        }
    }

    #[test]
    fn empty_blocker_list_yields_empty_set() {
        let securities = vec![security(0, 0, 10, "AAA")];
        let blockers: Vec<Box<dyn Blocker<SecurityRecord>>> = Vec::new();
        assert!(run_blockers(&securities, &blockers, &BlockingContext::sequential()).is_empty());
    }

    #[test]
    fn names_kinds_and_scopes_align() {
        assert_eq!(
            Blocker::<SecurityRecord>::kind(&SecurityIdOverlap),
            BlockingKind::IdOverlap
        );
        assert_eq!(
            Blocker::<SecurityRecord>::name(&TokenOverlap::default()),
            "token-overlap"
        );
        // Identifier joins are cheap enough to cross shards; text is not.
        assert!(Blocker::<SecurityRecord>::cross_shard(&SecurityIdOverlap));
        assert!(!Blocker::<SecurityRecord>::cross_shard(
            &TokenOverlap::default()
        ));
    }
}
