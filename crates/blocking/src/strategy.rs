//! The unified [`Blocker`] trait and recipe execution.
//!
//! Table 2's per-dataset blocking recipes used to be bespoke free functions
//! wired into each pipeline copy. Every strategy now implements the one
//! [`Blocker`] trait — companies run `[CompanyIdOverlap, TokenOverlap]`,
//! securities `[SecurityIdOverlap, IssuerMatch]`, products `[TokenOverlap]`
//! — so recipes are *declarative lists of trait objects* the blocking stage
//! dispatches uniformly: [`run_blockers`] executes independent recipes
//! concurrently on the shared worker pool and folds their outputs into one
//! provenance-tagged [`CandidateSet`]. New workloads compose their own
//! lists (or implement the trait) without touching the engine.
//!
//! Strategies borrow whatever side context they need (companies reach
//! *through* their securities' codes; issuer match needs the company-level
//! group assignment), so building a list is free of copies. The records
//! slice handed to [`Blocker::block`] may be any subset of a dataset — a
//! shard, a delta batch — as long as side context (e.g. the security
//! universe) stays addressable; blockers emit global record ids.

use crate::candidates::{BlockingKind, CandidateSet};
use gralmatch_records::Record;
use gralmatch_util::{Stopwatch, WorkerPool};

/// Execution context handed to every blocker: the worker pool shared with
/// the rest of the pipeline run, so parallel blockers (token overlap's
/// per-record counting) scale with the same knob as pairwise inference.
#[derive(Debug, Clone, Copy)]
pub struct BlockingContext {
    /// Worker pool for parallel steps inside a blocker.
    pub pool: WorkerPool,
}

impl BlockingContext {
    /// Single-worker context (deterministic sequential execution).
    pub fn sequential() -> Self {
        BlockingContext {
            pool: WorkerPool::new(1),
        }
    }

    /// Context sharing an existing pool.
    pub fn with_pool(pool: WorkerPool) -> Self {
        BlockingContext { pool }
    }
}

impl Default for BlockingContext {
    fn default() -> Self {
        BlockingContext::sequential()
    }
}

/// One blocking strategy over records of type `R`.
pub trait Blocker<R: Record>: Sync {
    /// Provenance flag recorded for pairs this blocker proposes.
    fn kind(&self) -> BlockingKind;

    /// Short label for traces and diagnostics.
    fn name(&self) -> &'static str;

    /// Whether the blocker is cheap enough (hash-join style, near-linear)
    /// to re-run globally for cross-shard boundary candidates. Quadratic
    /// text blockers keep the default `false` and stay shard-local.
    fn cross_shard(&self) -> bool {
        false
    }

    /// Propose candidate pairs from `records` into `out` (merging
    /// provenance on duplicates). `records` need not be a full dataset;
    /// emitted pairs carry the records' own (global) ids.
    fn block(&self, records: &[R], ctx: &BlockingContext, out: &mut CandidateSet);

    /// Propose the blocker's **complete** candidate set over
    /// `standing_records ∪ new_records` — the incremental-upsert entry
    /// point, called when `new_records` (a delta batch) arrives against an
    /// already-blocked standing population.
    ///
    /// The contract is exactness, not incrementality: the output must equal
    /// `block` over the union, because global statistics (document
    /// frequencies, top-n ranks, degeneracy guards) can re-rank *standing*
    /// pairs when a delta arrives. Overrides exploit the split to avoid
    /// materializing a combined record buffer (see
    /// [`TokenOverlap`](crate::token_overlap::TokenOverlap)); this default
    /// falls back to a full re-block over a concatenated copy.
    fn block_delta(
        &self,
        new_records: &[R],
        standing_records: &[R],
        ctx: &BlockingContext,
        out: &mut CandidateSet,
    ) where
        R: Clone,
    {
        let mut combined: Vec<R> = Vec::with_capacity(standing_records.len() + new_records.len());
        combined.extend_from_slice(standing_records);
        combined.extend_from_slice(new_records);
        self.block(&combined, ctx, out);
    }
}

/// Positional view over `standing ⧺ new` without materializing the
/// concatenation: positions `0..standing.len()` index the standing slice,
/// the rest the new slice. Shared by the zero-copy `block_delta`
/// overrides, whose exactness contract forces them to look at *all*
/// records (global statistics), just not to copy them.
pub(crate) struct SplitSlice<'a, R> {
    standing: &'a [R],
    new: &'a [R],
}

impl<'a, R> SplitSlice<'a, R> {
    pub(crate) fn new(new: &'a [R], standing: &'a [R]) -> Self {
        SplitSlice { standing, new }
    }

    pub(crate) fn len(&self) -> usize {
        self.standing.len() + self.new.len()
    }

    pub(crate) fn get(&self, position: usize) -> &'a R {
        if position < self.standing.len() {
            &self.standing[position]
        } else {
            &self.new[position - self.standing.len()]
        }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &'a R> + '_ {
        self.standing.iter().chain(self.new.iter())
    }
}

/// Per-recipe diagnostics of one [`run_blockers_traced`] execution.
///
/// Every recipe in the list produces exactly one run entry — **including
/// recipes that yielded zero candidates** — so the trace shape is stable
/// across runs of the same recipe list. (The CI perf gate diffs trace
/// shapes between a baseline and the current run; a dropped label would
/// read as a pipeline change.)
#[derive(Debug, Clone, PartialEq)]
pub struct BlockerRun {
    /// The recipe's [`Blocker::name`].
    pub name: &'static str,
    /// Distinct candidate pairs the recipe proposed (before merging with
    /// the other recipes; overlapping proposals count in every recipe).
    pub candidates: usize,
    /// Wall-clock seconds of the recipe.
    pub seconds: f64,
}

impl BlockerRun {
    /// Fold `run` into `runs`, summing counts and seconds on a name match
    /// (per-shard runs roll up into one line per recipe, in
    /// first-appearance order).
    pub fn accumulate(runs: &mut Vec<BlockerRun>, run: BlockerRun) {
        match runs.iter_mut().find(|r| r.name == run.name) {
            Some(existing) => {
                existing.candidates += run.candidates;
                existing.seconds += run.seconds;
            }
            None => runs.push(run),
        }
    }
}

/// Execute a recipe into one candidate set.
///
/// With a multi-worker context and more than one blocker, independent
/// recipes run concurrently on the shared pool, each into a private set,
/// merged (provenance-ORed) at the end — the merge is commutative, so the
/// result is schedule-independent.
pub fn run_blockers<R: Record + Sync>(
    records: &[R],
    blockers: &[Box<dyn Blocker<R> + '_>],
    ctx: &BlockingContext,
) -> CandidateSet {
    run_blockers_traced(records, blockers, ctx).0
}

/// [`run_blockers`] plus per-recipe diagnostics.
///
/// Returns one [`BlockerRun`] per recipe in list order. A recipe that
/// proposes zero candidates still emits its entry (with `candidates = 0`):
/// consumers that diff traces across runs (the CI perf gate) rely on the
/// shape being a function of the recipe list alone, not of the data.
pub fn run_blockers_traced<R: Record + Sync>(
    records: &[R],
    blockers: &[Box<dyn Blocker<R> + '_>],
    ctx: &BlockingContext,
) -> (CandidateSet, Vec<BlockerRun>) {
    let refs: Vec<&dyn Blocker<R>> = blockers.iter().map(|b| b.as_ref()).collect();
    run_blocker_refs_traced(records, &refs, ctx)
}

/// [`run_blockers_traced`] over borrowed trait objects — the sharded and
/// incremental engines dispatch recipe *subsets* (e.g. only the
/// cross-shard hash joins) this way. One implementation of the
/// "concurrent when >1 recipe and >1 worker, per-recipe stopwatch,
/// shape-stable run list" contract serves every execution path, so the
/// perf gate's trace semantics cannot drift between them.
pub fn run_blocker_refs_traced<R: Record + Sync>(
    records: &[R],
    blockers: &[&dyn Blocker<R>],
    ctx: &BlockingContext,
) -> (CandidateSet, Vec<BlockerRun>) {
    let run_one = |blocker: &&dyn Blocker<R>| {
        let watch = Stopwatch::start();
        let mut set = CandidateSet::new();
        blocker.block(records, ctx, &mut set);
        (set, watch.elapsed_secs())
    };
    let sets: Vec<(CandidateSet, f64)> = if blockers.len() > 1 && ctx.pool.workers() > 1 {
        ctx.pool.map(blockers, run_one)
    } else {
        blockers.iter().map(run_one).collect()
    };
    let mut out = CandidateSet::new();
    let mut runs = Vec::with_capacity(blockers.len());
    for (blocker, (set, seconds)) in blockers.iter().zip(&sets) {
        runs.push(BlockerRun {
            name: blocker.name(),
            candidates: set.len(),
            seconds: *seconds,
        });
        out.merge(set);
    }
    (out, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id_overlap::SecurityIdOverlap;
    use crate::issuer_match::IssuerMatch;
    use crate::token_overlap::TokenOverlap;
    use gralmatch_records::{IdCode, IdKind, RecordId, SecurityRecord, SourceId};
    use gralmatch_util::FxHashMap;

    fn security(id: u32, source: u16, issuer: u32, code: &str) -> SecurityRecord {
        SecurityRecord::new(RecordId(id), SourceId(source), "S ORD", RecordId(issuer))
            .with_code(IdCode::new(IdKind::Isin, code))
    }

    fn recipe(groups: &FxHashMap<RecordId, u32>) -> Vec<Box<dyn Blocker<SecurityRecord> + '_>> {
        vec![
            Box::new(SecurityIdOverlap),
            Box::new(IssuerMatch {
                company_group_of: groups,
            }),
        ]
    }

    #[test]
    fn blocker_list_merges_provenance() {
        let securities = vec![
            security(0, 0, 10, "AAA"),
            security(1, 1, 11, "AAA"),
            security(2, 2, 12, "BBB"),
        ];
        let groups: FxHashMap<RecordId, u32> =
            [(RecordId(10), 0), (RecordId(11), 0)].into_iter().collect();
        let candidates = run_blockers(
            &securities,
            &recipe(&groups),
            &BlockingContext::sequential(),
        );
        let pair = gralmatch_records::RecordPair::new(RecordId(0), RecordId(1));
        // Both blockers proposed (0,1): provenance carries both flags.
        assert!(candidates.from_blocking(pair, BlockingKind::IdOverlap));
        assert!(candidates.from_blocking(pair, BlockingKind::IssuerMatch));
        assert_eq!(candidates.len(), 1);
    }

    #[test]
    fn concurrent_recipes_match_sequential() {
        let securities: Vec<SecurityRecord> = (0..40)
            .map(|i| security(i, (i % 4) as u16, 100 + i / 2, &format!("C{}", i / 2)))
            .collect();
        let groups: FxHashMap<RecordId, u32> =
            (0..20).map(|g| (RecordId(100 + g), g % 7)).collect();
        let sequential = run_blockers(
            &securities,
            &recipe(&groups),
            &BlockingContext::sequential(),
        );
        let concurrent = run_blockers(
            &securities,
            &recipe(&groups),
            &BlockingContext::with_pool(WorkerPool::new(4)),
        );
        assert_eq!(sequential.pairs_sorted(), concurrent.pairs_sorted());
        for (pair, flags) in sequential.iter() {
            assert_eq!(concurrent.provenance(pair), flags);
        }
    }

    #[test]
    fn empty_blocker_list_yields_empty_set() {
        let securities = vec![security(0, 0, 10, "AAA")];
        let blockers: Vec<Box<dyn Blocker<SecurityRecord>>> = Vec::new();
        assert!(run_blockers(&securities, &blockers, &BlockingContext::sequential()).is_empty());
    }

    #[test]
    fn traced_run_keeps_zero_candidate_recipe_labels() {
        // One security with a code, nothing to pair: both recipes yield
        // zero candidates, yet both trace entries must survive so trace
        // shapes stay comparable across runs (the perf gate diffs them).
        let securities = vec![security(0, 0, 10, "AAA")];
        let groups: FxHashMap<RecordId, u32> = FxHashMap::default();
        let (set, runs) = run_blockers_traced(
            &securities,
            &recipe(&groups),
            &BlockingContext::sequential(),
        );
        assert!(set.is_empty());
        assert_eq!(runs.len(), 2, "every recipe emits an entry");
        assert_eq!(runs[0].name, "id-overlap");
        assert_eq!(runs[1].name, "issuer-match");
        assert!(runs.iter().all(|r| r.candidates == 0));
    }

    #[test]
    fn traced_run_counts_per_recipe_candidates() {
        let securities = vec![
            security(0, 0, 10, "AAA"),
            security(1, 1, 11, "AAA"),
            security(2, 2, 12, "BBB"),
        ];
        let groups: FxHashMap<RecordId, u32> =
            [(RecordId(10), 0), (RecordId(11), 0)].into_iter().collect();
        let (set, runs) = run_blockers_traced(
            &securities,
            &recipe(&groups),
            &BlockingContext::sequential(),
        );
        // Both recipes proposed the same (0,1) pair: one merged candidate,
        // but each recipe's own count is 1.
        assert_eq!(set.len(), 1);
        assert_eq!(runs[0].candidates, 1);
        assert_eq!(runs[1].candidates, 1);
    }

    #[test]
    fn blocker_run_accumulates_by_name() {
        let mut runs = Vec::new();
        BlockerRun::accumulate(
            &mut runs,
            BlockerRun {
                name: "id-overlap",
                candidates: 3,
                seconds: 0.5,
            },
        );
        BlockerRun::accumulate(
            &mut runs,
            BlockerRun {
                name: "token-overlap",
                candidates: 0,
                seconds: 0.1,
            },
        );
        BlockerRun::accumulate(
            &mut runs,
            BlockerRun {
                name: "id-overlap",
                candidates: 2,
                seconds: 0.25,
            },
        );
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].candidates, 5);
        assert!((runs[0].seconds - 0.75).abs() < 1e-12);
        assert_eq!(runs[1].candidates, 0, "zero-candidate line kept");
    }

    #[test]
    fn default_block_delta_falls_back_to_full_reblock() {
        // SortedNeighborhood keeps the trait's default `block_delta`: a
        // full re-block over the concatenated union.
        use crate::sorted_neighborhood::SortedNeighborhood;
        use gralmatch_records::CompanyRecord;
        let all: Vec<CompanyRecord> = (0..12)
            .map(|i| {
                CompanyRecord::new(
                    RecordId(i),
                    SourceId((i % 3) as u16),
                    format!("Name{:02}", i / 2),
                )
            })
            .collect();
        let (standing, new) = all.split_at(8);
        let ctx = BlockingContext::sequential();
        let mut full = CandidateSet::new();
        SortedNeighborhood::default().block(&all, &ctx, &mut full);
        let mut delta = CandidateSet::new();
        SortedNeighborhood::default().block_delta(new, standing, &ctx, &mut delta);
        assert_eq!(full.pairs_sorted(), delta.pairs_sorted());
    }

    #[test]
    fn hash_join_block_delta_matches_full_reblock() {
        let all: Vec<SecurityRecord> = (0..20)
            .map(|i| security(i, (i % 4) as u16, 100 + i / 2, &format!("C{}", i / 2)))
            .collect();
        let (standing, new) = all.split_at(14);
        let ctx = BlockingContext::sequential();
        let mut full = CandidateSet::new();
        SecurityIdOverlap.block(&all, &ctx, &mut full);
        let mut delta = CandidateSet::new();
        SecurityIdOverlap.block_delta(new, standing, &ctx, &mut delta);
        assert_eq!(full.pairs_sorted(), delta.pairs_sorted());
        for (pair, flags) in full.iter() {
            assert_eq!(delta.provenance(pair), flags);
        }
    }

    #[test]
    fn names_kinds_and_scopes_align() {
        assert_eq!(
            Blocker::<SecurityRecord>::kind(&SecurityIdOverlap),
            BlockingKind::IdOverlap
        );
        assert_eq!(
            Blocker::<SecurityRecord>::name(&TokenOverlap::default()),
            "token-overlap"
        );
        // Identifier joins are cheap enough to cross shards; text is not.
        assert!(Blocker::<SecurityRecord>::cross_shard(&SecurityIdOverlap));
        assert!(!Blocker::<SecurityRecord>::cross_shard(
            &TokenOverlap::default()
        ));
    }
}
