//! Token-Overlap blocking (paper Section 5.3.1, blocking 2).
//!
//! "Considers each record as the list of tokens resulting from its
//! tokenization and selects as candidate pairs those involving the record
//! and the top-n records with most overlapping tokens across different data
//! sources." This is the text-alignment candidate generator — and the main
//! source of false-positive bait, because boilerplate tokens ("hi-tech",
//! "networks", "energy", geographic terms) are shared across unrelated
//! companies.
//!
//! Implementation: an inverted token index. Tokens present in more than
//! `max_token_df` records are skipped when *counting* overlaps (they blow up
//! postings quadratically and carry no signal — the standard DF-cut used by
//! set-similarity joins).

use crate::candidates::{BlockingKind, CandidateSet};
use gralmatch_records::{Record, RecordId, RecordPair};
use gralmatch_text::tokenize;
use gralmatch_util::FxHashMap;

/// Token-overlap blocking parameters.
#[derive(Debug, Clone)]
pub struct TokenOverlapConfig {
    /// Keep the top-n overlapping records per record.
    pub top_n: usize,
    /// Skip tokens occurring in more than this many records.
    pub max_token_df: usize,
    /// Require at least this many overlapping tokens.
    pub min_overlap: usize,
}

impl Default for TokenOverlapConfig {
    fn default() -> Self {
        TokenOverlapConfig {
            top_n: 10,
            max_token_df: 200,
            min_overlap: 2,
        }
    }
}

/// Run the blocking over any record collection.
pub fn token_overlap<R: Record>(
    records: &[R],
    config: &TokenOverlapConfig,
    out: &mut CandidateSet,
) {
    // Tokenize all records once.
    let token_lists: Vec<Vec<String>> = records.iter().map(|r| tokenize(&r.full_text())).collect();

    // Build postings with dense token ids.
    let mut token_ids: FxHashMap<&str, u32> = FxHashMap::default();
    let mut postings: Vec<Vec<RecordId>> = Vec::new();
    for (record, tokens) in records.iter().zip(&token_lists) {
        let mut seen: gralmatch_util::FxHashSet<u32> = gralmatch_util::FxHashSet::default();
        for token in tokens {
            let next_id = postings.len() as u32;
            let id = *token_ids.entry(token.as_str()).or_insert_with(|| next_id);
            if id as usize == postings.len() {
                postings.push(Vec::new());
            }
            if seen.insert(id) {
                postings[id as usize].push(record.id());
            }
        }
    }

    // For each record, count token overlaps against postings.
    let mut counts: FxHashMap<RecordId, usize> = FxHashMap::default();
    for (record, tokens) in records.iter().zip(&token_lists) {
        counts.clear();
        let mut seen: gralmatch_util::FxHashSet<&str> = gralmatch_util::FxHashSet::default();
        for token in tokens {
            if !seen.insert(token.as_str()) {
                continue;
            }
            let Some(&token_id) = token_ids.get(token.as_str()) else {
                continue;
            };
            let holders = &postings[token_id as usize];
            if holders.len() > config.max_token_df {
                continue;
            }
            for &other in holders {
                if other == record.id() {
                    continue;
                }
                if records[other.0 as usize].source() == record.source() {
                    continue;
                }
                *counts.entry(other).or_insert(0) += 1;
            }
        }
        // Top-n by overlap count, ties broken by record id for determinism.
        let mut ranked: Vec<(usize, RecordId)> = counts
            .iter()
            .filter(|(_, &count)| count >= config.min_overlap)
            .map(|(&other, &count)| (count, other))
            .collect();
        ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, other) in ranked.iter().take(config.top_n) {
            out.add(
                RecordPair::new(record.id(), other),
                BlockingKind::TokenOverlap,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{CompanyRecord, SourceId};

    fn company(id: u32, source: u16, name: &str) -> CompanyRecord {
        CompanyRecord::new(RecordId(id), SourceId(source), name)
    }

    #[test]
    fn overlapping_names_become_candidates() {
        let records = vec![
            company(0, 0, "Crowdstrike Holdings Austin"),
            company(1, 1, "Crowdstrike Holdings Inc Austin"),
            company(2, 2, "Globex Paris Energy"),
        ];
        let mut set = CandidateSet::new();
        token_overlap(&records, &TokenOverlapConfig::default(), &mut set);
        assert!(set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(1)),
            BlockingKind::TokenOverlap
        ));
        assert!(!set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(2)),
            BlockingKind::TokenOverlap
        ));
    }

    #[test]
    fn min_overlap_filters_single_shared_token() {
        let records = vec![
            company(0, 0, "Acme Energy Zurich"),
            company(1, 1, "Globex Energy Paris"),
        ];
        let mut set = CandidateSet::new();
        token_overlap(&records, &TokenOverlapConfig::default(), &mut set);
        assert!(set.is_empty(), "one shared token is below min_overlap");
    }

    #[test]
    fn same_source_never_paired() {
        let records = vec![
            company(0, 0, "Acme Energy Zurich"),
            company(1, 0, "Acme Energy Zurich"),
        ];
        let mut set = CandidateSet::new();
        token_overlap(&records, &TokenOverlapConfig::default(), &mut set);
        assert!(set.is_empty());
    }

    #[test]
    fn top_n_caps_candidates_per_record() {
        // Record 0 overlaps with 20 near-identical records; top_n = 3 keeps 3.
        let mut records = vec![company(0, 0, "Quantum Edge Systems Zurich")];
        for i in 1..=20 {
            records.push(company(
                i,
                1 + (i % 3) as u16,
                "Quantum Edge Systems Zurich",
            ));
        }
        let config = TokenOverlapConfig {
            top_n: 3,
            ..TokenOverlapConfig::default()
        };
        let mut set = CandidateSet::new();
        token_overlap(&records, &config, &mut set);
        let involving_zero = set
            .pairs_sorted()
            .iter()
            .filter(|p| p.a == RecordId(0) || p.b == RecordId(0))
            .count();
        // Record 0 contributes top_n pairs; others may add pairs involving 0
        // from their own top-n scans (overlap is symmetric), so the count is
        // at least 3 but bounded by 20.
        assert!((3..=20).contains(&involving_zero), "{involving_zero}");
    }

    #[test]
    fn frequent_tokens_skipped() {
        // All records share "energy" (df above cap with a tiny cap);
        // without another shared token no pairs form.
        let records: Vec<CompanyRecord> = (0..10)
            .map(|i| company(i, (i % 2) as u16, &format!("Energy Unique{i} Name{i}")))
            .collect();
        let config = TokenOverlapConfig {
            max_token_df: 5,
            min_overlap: 1,
            ..TokenOverlapConfig::default()
        };
        let mut set = CandidateSet::new();
        token_overlap(&records, &config, &mut set);
        assert!(set.is_empty());
    }

    #[test]
    fn deterministic_output() {
        let records = vec![
            company(0, 0, "Crowdstrike Holdings Austin Texas"),
            company(1, 1, "Crowdstrike Holdings Austin"),
            company(2, 2, "Crowdstrike Platforms Austin Texas"),
        ];
        let run = || {
            let mut set = CandidateSet::new();
            token_overlap(&records, &TokenOverlapConfig::default(), &mut set);
            set.pairs_sorted()
        };
        assert_eq!(run(), run());
    }
}
