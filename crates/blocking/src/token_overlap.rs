//! Token-Overlap blocking (paper Section 5.3.1, blocking 2).
//!
//! "Considers each record as the list of tokens resulting from its
//! tokenization and selects as candidate pairs those involving the record
//! and the top-n records with most overlapping tokens across different data
//! sources." This is the text-alignment candidate generator — and the main
//! source of false-positive bait, because boilerplate tokens ("hi-tech",
//! "networks", "energy", geographic terms) are shared across unrelated
//! companies.
//!
//! Implementation: an inverted token index with the DF-cut applied while
//! *building* it — tokens present in more than `max_token_df` records (they
//! blow up postings quadratically and carry no signal — the standard cut
//! used by set-similarity joins) never get a postings list allocated, and
//! neither do singleton tokens, which cannot form a pair. The per-record
//! overlap counting — the blocking stage's hot path on the securities-scale
//! datasets — runs on the shared worker pool over stealable chunks, each
//! worker reusing one scratch count map across the records it claims.

use crate::candidates::{BlockingKind, CandidateSet};
use crate::strategy::{Blocker, BlockingContext, SplitSlice};
use gralmatch_records::{Record, RecordId, RecordPair};
use gralmatch_text::tokenize;
use gralmatch_util::{FxHashMap, FxHashSet, WorkerPool};

/// Token-overlap blocking parameters.
#[derive(Debug, Clone)]
pub struct TokenOverlapConfig {
    /// Keep the top-n overlapping records per record.
    pub top_n: usize,
    /// Skip tokens occurring in more than this many records.
    pub max_token_df: usize,
    /// Require at least this many overlapping tokens.
    pub min_overlap: usize,
}

impl Default for TokenOverlapConfig {
    fn default() -> Self {
        TokenOverlapConfig {
            top_n: 10,
            max_token_df: 200,
            min_overlap: 2,
        }
    }
}

/// Token-Overlap blocking (Table 2, blocking 2) for any record type.
#[derive(Debug, Clone, Default)]
pub struct TokenOverlap {
    /// Top-n / DF-cut / overlap-floor parameters.
    pub config: TokenOverlapConfig,
}

impl TokenOverlap {
    /// Strategy with the given parameters.
    pub fn new(config: TokenOverlapConfig) -> Self {
        TokenOverlap { config }
    }
}

impl<R: Record + Sync> Blocker<R> for TokenOverlap {
    fn kind(&self) -> BlockingKind {
        BlockingKind::TokenOverlap
    }

    fn name(&self) -> &'static str {
        "token-overlap"
    }

    fn block(&self, records: &[R], ctx: &BlockingContext, out: &mut CandidateSet) {
        token_overlap_blocking(&SplitSlice::new(records, &[]), &self.config, &ctx.pool, out);
    }

    /// Token overlap's delta path: the same algorithm over the
    /// standing/new split without materializing a combined record buffer.
    /// Exact by construction — document frequencies and per-record top-n
    /// ranks are **global** properties, so a delta batch can re-rank pairs
    /// between standing records; anything cheaper than a full recount over
    /// the union would silently diverge from a one-shot run.
    fn block_delta(
        &self,
        new_records: &[R],
        standing_records: &[R],
        ctx: &BlockingContext,
        out: &mut CandidateSet,
    ) where
        R: Clone,
    {
        token_overlap_blocking(
            &SplitSlice::new(new_records, standing_records),
            &self.config,
            &ctx.pool,
            out,
        );
    }
}

/// The blocking over any record slice (ids need not be dense — positions
/// index the view, emitted pairs carry the records' own ids).
fn token_overlap_blocking<R: Record + Sync>(
    records: &SplitSlice<'_, R>,
    config: &TokenOverlapConfig,
    pool: &WorkerPool,
    out: &mut CandidateSet,
) {
    // Tokenize all records once (pure per record, so it parallelizes too).
    let all_positions: Vec<u32> = (0..records.len() as u32).collect();
    let token_lists: Vec<Vec<String>> = pool.map(&all_positions, |&p| {
        tokenize(&records.get(p as usize).full_text())
    });

    // Pass 1: document frequency per token (distinct tokens per record).
    let mut df: FxHashMap<&str, u32> = FxHashMap::default();
    let mut seen_text: FxHashSet<&str> = FxHashSet::default();
    for tokens in &token_lists {
        seen_text.clear();
        for token in tokens {
            if seen_text.insert(token.as_str()) {
                *df.entry(token.as_str()).or_insert(0) += 1;
            }
        }
    }

    // Pass 2: postings with dense token ids, DF-cut applied at build time —
    // stop tokens (df > cap) and singleton tokens (df < 2) are never
    // materialized. `kept_tokens[i]` lists record i's distinct useful
    // token ids so the counting pass needs no re-deduplication.
    let mut token_ids: FxHashMap<&str, u32> = FxHashMap::default();
    let mut postings: Vec<Vec<u32>> = Vec::new();
    let mut kept_tokens: Vec<Vec<u32>> = Vec::with_capacity(records.len());
    for (position, tokens) in token_lists.iter().enumerate() {
        let mut kept: Vec<u32> = Vec::new();
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for token in tokens {
            let frequency = df[token.as_str()] as usize;
            if frequency < 2 || frequency > config.max_token_df {
                continue;
            }
            let next_id = postings.len() as u32;
            let id = *token_ids.entry(token.as_str()).or_insert(next_id);
            if id as usize == postings.len() {
                postings.push(Vec::with_capacity(frequency));
            }
            if seen.insert(id) {
                postings[id as usize].push(position as u32);
                kept.push(id);
            }
        }
        kept_tokens.push(kept);
    }

    // Pass 3 (the hot path): per-record overlap counting over stealable
    // chunks; each worker reuses one scratch count map, and the per-record
    // top-n pair lists are merged into `out` at the end.
    let per_record: Vec<Vec<RecordPair>> = pool.map_init(
        &all_positions,
        FxHashMap::<u32, usize>::default,
        |counts, &position| {
            counts.clear();
            let record = records.get(position as usize);
            for &token_id in &kept_tokens[position as usize] {
                for &other in &postings[token_id as usize] {
                    if other == position {
                        continue;
                    }
                    if records.get(other as usize).source() == record.source() {
                        continue;
                    }
                    *counts.entry(other).or_insert(0) += 1;
                }
            }
            // Top-n by overlap count, ties broken by record id for determinism.
            let mut ranked: Vec<(usize, RecordId)> = counts
                .iter()
                .filter(|(_, &count)| count >= config.min_overlap)
                .map(|(&other, &count)| (count, records.get(other as usize).id()))
                .collect();
            ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            ranked
                .iter()
                .take(config.top_n)
                .map(|&(_, other)| RecordPair::new(record.id(), other))
                .collect()
        },
    );
    for pairs in per_record {
        for pair in pairs {
            out.add(pair, BlockingKind::TokenOverlap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{CompanyRecord, SourceId};

    fn company(id: u32, source: u16, name: &str) -> CompanyRecord {
        CompanyRecord::new(RecordId(id), SourceId(source), name)
    }

    fn run(records: &[CompanyRecord], config: &TokenOverlapConfig) -> CandidateSet {
        let mut set = CandidateSet::new();
        TokenOverlap::new(config.clone()).block(records, &BlockingContext::sequential(), &mut set);
        set
    }

    #[test]
    fn overlapping_names_become_candidates() {
        let records = vec![
            company(0, 0, "Crowdstrike Holdings Austin"),
            company(1, 1, "Crowdstrike Holdings Inc Austin"),
            company(2, 2, "Globex Paris Energy"),
        ];
        let set = run(&records, &TokenOverlapConfig::default());
        assert!(set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(1)),
            BlockingKind::TokenOverlap
        ));
        assert!(!set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(2)),
            BlockingKind::TokenOverlap
        ));
    }

    #[test]
    fn min_overlap_filters_single_shared_token() {
        let records = vec![
            company(0, 0, "Acme Energy Zurich"),
            company(1, 1, "Globex Energy Paris"),
        ];
        let set = run(&records, &TokenOverlapConfig::default());
        assert!(set.is_empty(), "one shared token is below min_overlap");
    }

    #[test]
    fn same_source_never_paired() {
        let records = vec![
            company(0, 0, "Acme Energy Zurich"),
            company(1, 0, "Acme Energy Zurich"),
        ];
        let set = run(&records, &TokenOverlapConfig::default());
        assert!(set.is_empty());
    }

    #[test]
    fn top_n_caps_candidates_per_record() {
        // Record 0 overlaps with 20 near-identical records; top_n = 3 keeps 3.
        let mut records = vec![company(0, 0, "Quantum Edge Systems Zurich")];
        for i in 1..=20 {
            records.push(company(
                i,
                1 + (i % 3) as u16,
                "Quantum Edge Systems Zurich",
            ));
        }
        let config = TokenOverlapConfig {
            top_n: 3,
            ..TokenOverlapConfig::default()
        };
        let set = run(&records, &config);
        let involving_zero = set
            .pairs_sorted()
            .iter()
            .filter(|p| p.a == RecordId(0) || p.b == RecordId(0))
            .count();
        // Record 0 contributes top_n pairs; others may add pairs involving 0
        // from their own top-n scans (overlap is symmetric), so the count is
        // at least 3 but bounded by 20.
        assert!((3..=20).contains(&involving_zero), "{involving_zero}");
    }

    #[test]
    fn frequent_tokens_skipped() {
        // All records share "energy" (df above cap with a tiny cap);
        // without another shared token no pairs form.
        let records: Vec<CompanyRecord> = (0..10)
            .map(|i| company(i, (i % 2) as u16, &format!("Energy Unique{i} Name{i}")))
            .collect();
        let config = TokenOverlapConfig {
            max_token_df: 5,
            min_overlap: 1,
            ..TokenOverlapConfig::default()
        };
        let set = run(&records, &config);
        assert!(set.is_empty());
    }

    #[test]
    fn deterministic_output() {
        let records = vec![
            company(0, 0, "Crowdstrike Holdings Austin Texas"),
            company(1, 1, "Crowdstrike Holdings Austin"),
            company(2, 2, "Crowdstrike Platforms Austin Texas"),
        ];
        let once = run(&records, &TokenOverlapConfig::default()).pairs_sorted();
        let twice = run(&records, &TokenOverlapConfig::default()).pairs_sorted();
        assert_eq!(once, twice);
    }

    #[test]
    fn parallel_counting_matches_sequential() {
        // Enough records that the pool actually chunks the counting pass.
        let records: Vec<CompanyRecord> = (0..300)
            .map(|i| {
                company(
                    i,
                    (i % 4) as u16,
                    &format!("Cluster{} Widget Systems Node{}", i % 30, i % 7),
                )
            })
            .collect();
        let sequential = run(&records, &TokenOverlapConfig::default());
        let mut parallel = CandidateSet::new();
        TokenOverlap::default().block(
            &records,
            &BlockingContext::with_pool(WorkerPool::new(4).with_chunk_size(16)),
            &mut parallel,
        );
        assert_eq!(sequential.pairs_sorted(), parallel.pairs_sorted());
    }

    #[test]
    fn delta_path_matches_full_reblock() {
        // The zero-copy two-slice recount must equal a one-shot block over
        // the union — including re-ranked standing pairs: the delta records
        // share tokens with the standing ones, shifting DFs and top-n.
        let all: Vec<CompanyRecord> = (0..60)
            .map(|i| {
                company(
                    i,
                    (i % 4) as u16,
                    &format!("Cluster{} Widget Systems Node{}", i % 12, i % 5),
                )
            })
            .collect();
        for split in [0, 20, 45, 60] {
            let (standing, new) = all.split_at(split);
            let mut full = CandidateSet::new();
            TokenOverlap::default().block(&all, &BlockingContext::sequential(), &mut full);
            let mut delta = CandidateSet::new();
            TokenOverlap::default().block_delta(
                new,
                standing,
                &BlockingContext::sequential(),
                &mut delta,
            );
            assert_eq!(
                full.pairs_sorted(),
                delta.pairs_sorted(),
                "split at {split}"
            );
        }
    }

    #[test]
    fn works_on_sparse_id_slices() {
        // A shard hands the blocker a slice whose ids are NOT 0..n; pairs
        // must carry the records' own ids, indexed by slice position.
        let records = vec![
            company(17, 0, "Crowdstrike Holdings Austin"),
            company(42, 1, "Crowdstrike Holdings Inc Austin"),
            company(99, 2, "Globex Paris Energy"),
        ];
        let set = run(&records, &TokenOverlapConfig::default());
        assert!(set.from_blocking(
            RecordPair::new(RecordId(17), RecordId(42)),
            BlockingKind::TokenOverlap
        ));
    }
}
