//! Blocking quality metrics.
//!
//! A blocking trades completeness for tractability: the paper notes the
//! pairwise recall on blocked candidates is lower than on fine-tuning test
//! pairs *because the blocking discards true pairs* (Section 5.3.2). This
//! module measures that loss directly — pair completeness (blocking
//! recall), reduction ratio, and the per-blocking breakdown — so the
//! Table 2 configurations can be audited.

use crate::candidates::{BlockingKind, CandidateSet};
use gralmatch_records::GroundTruth;

/// Quality metrics of one candidate set against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Fraction of true pairs kept by the blocking (pair completeness).
    pub recall: f64,
    /// 1 − |candidates| / |all pairs| — how much work the blocking saves.
    pub reduction_ratio: f64,
    /// True pairs among the candidates.
    pub true_pairs_kept: u64,
    /// Candidate count.
    pub num_candidates: usize,
}

/// Evaluate a candidate set. `num_records` is the dataset size (for the
/// reduction ratio).
pub fn blocking_quality(
    candidates: &CandidateSet,
    gt: &GroundTruth,
    num_records: usize,
) -> BlockingQuality {
    let true_pairs_kept = candidates
        .iter()
        .filter(|(pair, _)| gt.is_match_pair(*pair))
        .count() as u64;
    let total_true = gt.num_true_pairs();
    let all_pairs = num_records as f64 * (num_records as f64 - 1.0) / 2.0;
    BlockingQuality {
        recall: if total_true == 0 {
            1.0
        } else {
            true_pairs_kept as f64 / total_true as f64
        },
        reduction_ratio: if all_pairs == 0.0 {
            0.0
        } else {
            1.0 - candidates.len() as f64 / all_pairs
        },
        true_pairs_kept,
        num_candidates: candidates.len(),
    }
}

/// Recall of the subset of candidates produced by one specific blocking —
/// quantifies each blocking's individual contribution.
pub fn blocking_recall_by_kind(
    candidates: &CandidateSet,
    gt: &GroundTruth,
    kind: BlockingKind,
) -> f64 {
    let kept = candidates
        .iter()
        .filter(|(pair, flags)| flags & kind.flag() != 0 && gt.is_match_pair(*pair))
        .count() as u64;
    let total = gt.num_true_pairs();
    if total == 0 {
        1.0
    } else {
        kept as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{EntityId, RecordId, RecordPair};

    fn gt() -> GroundTruth {
        GroundTruth::from_assignments([
            (RecordId(0), EntityId(1)),
            (RecordId(1), EntityId(1)),
            (RecordId(2), EntityId(2)),
            (RecordId(3), EntityId(2)),
        ])
    }

    fn pair(a: u32, b: u32) -> RecordPair {
        RecordPair::new(RecordId(a), RecordId(b))
    }

    #[test]
    fn full_recall_when_all_true_pairs_kept() {
        let mut set = CandidateSet::new();
        set.add(pair(0, 1), BlockingKind::IdOverlap);
        set.add(pair(2, 3), BlockingKind::TokenOverlap);
        let quality = blocking_quality(&set, &gt(), 4);
        assert_eq!(quality.recall, 1.0);
        assert_eq!(quality.true_pairs_kept, 2);
        // 2 of 6 possible pairs -> reduction 2/3.
        assert!((quality.reduction_ratio - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn missing_pair_lowers_recall() {
        let mut set = CandidateSet::new();
        set.add(pair(0, 1), BlockingKind::IdOverlap);
        set.add(pair(0, 2), BlockingKind::IdOverlap); // a non-match
        let quality = blocking_quality(&set, &gt(), 4);
        assert_eq!(quality.recall, 0.5);
    }

    #[test]
    fn per_kind_breakdown() {
        let mut set = CandidateSet::new();
        set.add(pair(0, 1), BlockingKind::IdOverlap);
        set.add(pair(2, 3), BlockingKind::TokenOverlap);
        let g = gt();
        assert_eq!(
            blocking_recall_by_kind(&set, &g, BlockingKind::IdOverlap),
            0.5
        );
        assert_eq!(
            blocking_recall_by_kind(&set, &g, BlockingKind::TokenOverlap),
            0.5
        );
        assert_eq!(
            blocking_recall_by_kind(&set, &g, BlockingKind::IssuerMatch),
            0.0
        );
    }

    #[test]
    fn empty_ground_truth_full_recall() {
        let set = CandidateSet::new();
        let empty = GroundTruth::default();
        assert_eq!(blocking_quality(&set, &empty, 10).recall, 1.0);
    }
}
