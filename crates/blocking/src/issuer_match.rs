//! Issuer-Match blocking (paper Section 5.3.1, blocking 3 — securities only).
//!
//! "For each security record, consider as candidate pairs those involving
//! all other securities issued by companies previously matched to the
//! security's issuer." Given a company-level group assignment (the output of
//! the company matching pipeline), securities of co-grouped issuers become
//! candidates — this finds security pairs with non-matching identifiers and
//! generic names ("Registered Shs") that only their issuer context can link.

use crate::candidates::{BlockingKind, CandidateSet};
use gralmatch_records::{Record, RecordId, RecordPair, SecurityRecord};
use gralmatch_util::FxHashMap;

/// Guard against pathological company groups pulling in quadratic pairs.
pub const MAX_GROUP_SECURITIES: usize = 128;

/// Run the blocking.
///
/// `company_group_of` maps a company record id to its matched-group id
/// (any dense labeling — typically the connected-component index of the
/// company matching output). Companies missing from the map are singletons.
pub fn issuer_match(
    securities: &[SecurityRecord],
    company_group_of: &FxHashMap<RecordId, u32>,
    out: &mut CandidateSet,
) {
    // group id -> securities issued by members of the group.
    let mut by_group: FxHashMap<u32, Vec<RecordId>> = FxHashMap::default();
    for security in securities {
        if let Some(&group) = company_group_of.get(&security.issuer) {
            by_group.entry(group).or_default().push(security.id());
        }
    }
    for members in by_group.values() {
        if members.len() < 2 || members.len() > MAX_GROUP_SECURITIES {
            continue;
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let (a, b) = (members[i], members[j]);
                if securities[a.0 as usize].source() == securities[b.0 as usize].source() {
                    continue;
                }
                out.add(RecordPair::new(a, b), BlockingKind::IssuerMatch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::SourceId;

    fn security(id: u32, source: u16, issuer: u32) -> SecurityRecord {
        SecurityRecord::new(RecordId(id), SourceId(source), "S ORD", RecordId(issuer))
    }

    fn groups(assignments: &[(u32, u32)]) -> FxHashMap<RecordId, u32> {
        assignments
            .iter()
            .map(|&(record, group)| (RecordId(record), group))
            .collect()
    }

    #[test]
    fn securities_of_matched_issuers_paired() {
        let securities = vec![security(0, 0, 10), security(1, 1, 11), security(2, 2, 12)];
        // Companies 10 and 11 matched into group 0; 12 alone in group 1.
        let map = groups(&[(10, 0), (11, 0), (12, 1)]);
        let mut set = CandidateSet::new();
        issuer_match(&securities, &map, &mut set);
        assert_eq!(set.len(), 1);
        assert!(set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(1)),
            BlockingKind::IssuerMatch
        ));
    }

    #[test]
    fn unmatched_issuers_no_pairs() {
        let securities = vec![security(0, 0, 10), security(1, 1, 11)];
        let map = groups(&[(10, 0), (11, 1)]);
        let mut set = CandidateSet::new();
        issuer_match(&securities, &map, &mut set);
        assert!(set.is_empty());
    }

    #[test]
    fn same_source_skipped() {
        let securities = vec![security(0, 0, 10), security(1, 0, 11)];
        let map = groups(&[(10, 0), (11, 0)]);
        let mut set = CandidateSet::new();
        issuer_match(&securities, &map, &mut set);
        assert!(set.is_empty());
    }

    #[test]
    fn missing_issuer_mapping_ignored() {
        let securities = vec![security(0, 0, 10), security(1, 1, 11)];
        let map = groups(&[(10, 0)]); // issuer 11 unmapped
        let mut set = CandidateSet::new();
        issuer_match(&securities, &map, &mut set);
        assert!(set.is_empty());
    }

    #[test]
    fn oversized_groups_skipped() {
        let n = MAX_GROUP_SECURITIES as u32 + 10;
        let securities: Vec<SecurityRecord> = (0..n)
            .map(|i| security(i, (i % 7) as u16, 100 + i))
            .collect();
        let map: FxHashMap<RecordId, u32> = (0..n).map(|i| (RecordId(100 + i), 0)).collect();
        let mut set = CandidateSet::new();
        issuer_match(&securities, &map, &mut set);
        assert!(set.is_empty());
    }

    #[test]
    fn multiple_securities_per_company_all_paired() {
        // Group 0: companies 10 (source 0) and 11 (source 1), each with two
        // securities -> 4 cross-source pairs.
        let securities = vec![
            security(0, 0, 10),
            security(1, 0, 10),
            security(2, 1, 11),
            security(3, 1, 11),
        ];
        let map = groups(&[(10, 0), (11, 0)]);
        let mut set = CandidateSet::new();
        issuer_match(&securities, &map, &mut set);
        assert_eq!(set.len(), 4);
    }
}
