//! Issuer-Match blocking (paper Section 5.3.1, blocking 3 — securities only).
//!
//! "For each security record, consider as candidate pairs those involving
//! all other securities issued by companies previously matched to the
//! security's issuer." Given a company-level group assignment (the output of
//! the company matching pipeline), securities of co-grouped issuers become
//! candidates — this finds security pairs with non-matching identifiers and
//! generic names ("Registered Shs") that only their issuer context can link.
//! Like the identifier joins, it is near-linear and runs globally for
//! cross-shard boundary candidates in a sharded pipeline.

use crate::candidates::{BlockingKind, CandidateSet};
use crate::strategy::{Blocker, BlockingContext, SplitSlice};
use gralmatch_records::{Record, RecordId, RecordPair, SecurityRecord};
use gralmatch_util::FxHashMap;

/// Guard against pathological company groups pulling in quadratic pairs.
pub const MAX_GROUP_SECURITIES: usize = 128;

/// Issuer-Match blocking (securities only): securities of co-grouped
/// issuers become candidates.
#[derive(Debug, Clone, Copy)]
pub struct IssuerMatch<'a> {
    /// Company record id → matched-group id (output of a company matching;
    /// any dense labeling — typically the connected-component index).
    /// Companies missing from the map are singletons.
    pub company_group_of: &'a FxHashMap<RecordId, u32>,
}

impl Blocker<SecurityRecord> for IssuerMatch<'_> {
    fn kind(&self) -> BlockingKind {
        BlockingKind::IssuerMatch
    }

    fn name(&self) -> &'static str {
        "issuer-match"
    }

    fn cross_shard(&self) -> bool {
        true
    }

    fn block(&self, records: &[SecurityRecord], _ctx: &BlockingContext, out: &mut CandidateSet) {
        self.join(&SplitSlice::new(records, &[]), out);
    }

    /// Zero-copy delta path: the per-group quadratic guard
    /// ([`MAX_GROUP_SECURITIES`]) must see the union's group sizes, so the
    /// join runs over both slices without a concatenation copy.
    fn block_delta(
        &self,
        new_records: &[SecurityRecord],
        standing_records: &[SecurityRecord],
        _ctx: &BlockingContext,
        out: &mut CandidateSet,
    ) {
        self.join(&SplitSlice::new(new_records, standing_records), out);
    }
}

impl IssuerMatch<'_> {
    fn join(&self, records: &SplitSlice<'_, SecurityRecord>, out: &mut CandidateSet) {
        // group id -> positions of securities issued by members of the group.
        let mut by_group: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (position, security) in records.iter().enumerate() {
            if let Some(&group) = self.company_group_of.get(&security.issuer) {
                by_group.entry(group).or_default().push(position as u32);
            }
        }
        for members in by_group.values() {
            if members.len() < 2 || members.len() > MAX_GROUP_SECURITIES {
                continue;
            }
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    let (a, b) = (
                        records.get(members[i] as usize),
                        records.get(members[j] as usize),
                    );
                    if a.source() == b.source() {
                        continue;
                    }
                    out.add(RecordPair::new(a.id(), b.id()), BlockingKind::IssuerMatch);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::SourceId;

    fn security(id: u32, source: u16, issuer: u32) -> SecurityRecord {
        SecurityRecord::new(RecordId(id), SourceId(source), "S ORD", RecordId(issuer))
    }

    fn groups(assignments: &[(u32, u32)]) -> FxHashMap<RecordId, u32> {
        assignments
            .iter()
            .map(|&(record, group)| (RecordId(record), group))
            .collect()
    }

    fn run(securities: &[SecurityRecord], map: &FxHashMap<RecordId, u32>) -> CandidateSet {
        let mut set = CandidateSet::new();
        IssuerMatch {
            company_group_of: map,
        }
        .block(securities, &BlockingContext::sequential(), &mut set);
        set
    }

    #[test]
    fn securities_of_matched_issuers_paired() {
        let securities = vec![security(0, 0, 10), security(1, 1, 11), security(2, 2, 12)];
        // Companies 10 and 11 matched into group 0; 12 alone in group 1.
        let map = groups(&[(10, 0), (11, 0), (12, 1)]);
        let set = run(&securities, &map);
        assert_eq!(set.len(), 1);
        assert!(set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(1)),
            BlockingKind::IssuerMatch
        ));
    }

    #[test]
    fn unmatched_issuers_no_pairs() {
        let securities = vec![security(0, 0, 10), security(1, 1, 11)];
        let map = groups(&[(10, 0), (11, 1)]);
        assert!(run(&securities, &map).is_empty());
    }

    #[test]
    fn same_source_skipped() {
        let securities = vec![security(0, 0, 10), security(1, 0, 11)];
        let map = groups(&[(10, 0), (11, 0)]);
        assert!(run(&securities, &map).is_empty());
    }

    #[test]
    fn missing_issuer_mapping_ignored() {
        let securities = vec![security(0, 0, 10), security(1, 1, 11)];
        let map = groups(&[(10, 0)]); // issuer 11 unmapped
        assert!(run(&securities, &map).is_empty());
    }

    #[test]
    fn oversized_groups_skipped() {
        let n = MAX_GROUP_SECURITIES as u32 + 10;
        let securities: Vec<SecurityRecord> = (0..n)
            .map(|i| security(i, (i % 7) as u16, 100 + i))
            .collect();
        let map: FxHashMap<RecordId, u32> = (0..n).map(|i| (RecordId(100 + i), 0)).collect();
        assert!(run(&securities, &map).is_empty());
    }

    #[test]
    fn multiple_securities_per_company_all_paired() {
        // Group 0: companies 10 (source 0) and 11 (source 1), each with two
        // securities -> 4 cross-source pairs.
        let securities = vec![
            security(0, 0, 10),
            security(1, 0, 10),
            security(2, 1, 11),
            security(3, 1, 11),
        ];
        let map = groups(&[(10, 0), (11, 0)]);
        assert_eq!(run(&securities, &map).len(), 4);
    }

    #[test]
    fn sparse_id_slices_emit_record_ids() {
        // A shard slice with non-dense ids still pairs by issuer group.
        let securities = vec![security(33, 0, 10), security(77, 1, 11)];
        let map = groups(&[(10, 0), (11, 0)]);
        let set = run(&securities, &map);
        assert!(set.from_blocking(
            RecordPair::new(RecordId(33), RecordId(77)),
            BlockingKind::IssuerMatch
        ));
    }
}
