//! ID-Overlap blocking (paper Section 5.3.1, blocking 1).
//!
//! Securities: candidate pairs are records (from different sources) sharing
//! at least one identifier code value. Companies: a company pair is a
//! candidate when any of their *securities* share an identifier (or their
//! own LEIs match) — "we evaluate against the companies whose associated
//! securities have a matching identifier with any of the securities issued
//! by each company record".
//!
//! This blocking is "equivalent to the benchmark heuristic often used to
//! match these types of financial records"; data drift makes some of its
//! pairs false (mergers) and misses others (overwritten/missing codes).

use crate::candidates::{BlockingKind, CandidateSet};
use gralmatch_records::{CompanyRecord, Record, RecordId, RecordPair, SecurityRecord};
use gralmatch_util::FxHashMap;

/// Guard against degenerate codes shared by huge numbers of records: codes
/// with more than this many holders are skipped (quadratic pair blowup).
pub const MAX_CODE_HOLDERS: usize = 64;

fn pairs_from_postings(
    postings: &FxHashMap<&str, Vec<RecordId>>,
    source_of: impl Fn(RecordId) -> u16,
    out: &mut CandidateSet,
) {
    for holders in postings.values() {
        if holders.len() < 2 || holders.len() > MAX_CODE_HOLDERS {
            continue;
        }
        for i in 0..holders.len() {
            for j in (i + 1)..holders.len() {
                if source_of(holders[i]) != source_of(holders[j]) {
                    out.add(
                        RecordPair::new(holders[i], holders[j]),
                        BlockingKind::IdOverlap,
                    );
                }
            }
        }
    }
}

/// ID-overlap candidates among security records.
pub fn id_overlap_securities(securities: &[SecurityRecord], out: &mut CandidateSet) {
    let mut postings: FxHashMap<&str, Vec<RecordId>> = FxHashMap::default();
    for record in securities {
        for code in record.id_codes() {
            postings
                .entry(code.value.as_str())
                .or_default()
                .push(record.id());
        }
    }
    pairs_from_postings(&postings, |id| securities[id.0 as usize].source().0, out);
}

/// ID-overlap candidates among company records, via their securities'
/// identifiers and their own LEIs.
pub fn id_overlap_companies(
    companies: &[CompanyRecord],
    securities: &[SecurityRecord],
    out: &mut CandidateSet,
) {
    // code value -> company records whose securities (or self) carry it.
    let mut postings: FxHashMap<&str, Vec<RecordId>> = FxHashMap::default();
    for company in companies {
        for code in company.id_codes() {
            postings
                .entry(code.value.as_str())
                .or_default()
                .push(company.id());
        }
        for &security_id in &company.securities {
            for code in securities[security_id.0 as usize].id_codes() {
                postings
                    .entry(code.value.as_str())
                    .or_default()
                    .push(company.id());
            }
        }
    }
    // A company may hold the same code through several securities; dedup
    // holders per code before pairing.
    for holders in postings.values_mut() {
        holders.sort_unstable();
        holders.dedup();
    }
    pairs_from_postings(&postings, |id| companies[id.0 as usize].source().0, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{IdCode, IdKind, SourceId};

    fn security(id: u32, source: u16, isin: &str, issuer: u32) -> SecurityRecord {
        SecurityRecord::new(RecordId(id), SourceId(source), "S ORD", RecordId(issuer))
            .with_code(IdCode::new(IdKind::Isin, isin))
    }

    #[test]
    fn securities_sharing_code_are_candidates() {
        let securities = vec![
            security(0, 0, "US111", 0),
            security(1, 1, "US111", 1),
            security(2, 2, "US222", 2),
        ];
        let mut set = CandidateSet::new();
        id_overlap_securities(&securities, &mut set);
        assert_eq!(set.len(), 1);
        assert!(set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(1)),
            BlockingKind::IdOverlap
        ));
    }

    #[test]
    fn same_source_pairs_skipped() {
        let securities = vec![security(0, 0, "US111", 0), security(1, 0, "US111", 1)];
        let mut set = CandidateSet::new();
        id_overlap_securities(&securities, &mut set);
        assert!(set.is_empty());
    }

    #[test]
    fn degenerate_codes_skipped() {
        let securities: Vec<SecurityRecord> = (0..(MAX_CODE_HOLDERS as u32 + 10))
            .map(|i| security(i, (i % 5) as u16, "SHARED", i))
            .collect();
        let mut set = CandidateSet::new();
        id_overlap_securities(&securities, &mut set);
        assert!(set.is_empty(), "over-shared code must be skipped");
    }

    #[test]
    fn companies_matched_through_securities() {
        let securities = vec![security(0, 0, "US111", 0), security(1, 1, "US111", 1)];
        let mut companies = vec![
            CompanyRecord::new(RecordId(0), SourceId(0), "Acme"),
            CompanyRecord::new(RecordId(1), SourceId(1), "Acme Inc"),
        ];
        companies[0].securities = vec![RecordId(0)];
        companies[1].securities = vec![RecordId(1)];
        let mut set = CandidateSet::new();
        id_overlap_companies(&companies, &securities, &mut set);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn companies_matched_through_lei() {
        let companies = vec![
            {
                let mut c = CompanyRecord::new(RecordId(0), SourceId(0), "Acme");
                c.id_codes.push(IdCode::new(IdKind::Lei, "LEI1"));
                c
            },
            {
                let mut c = CompanyRecord::new(RecordId(1), SourceId(2), "Acme Corp");
                c.id_codes.push(IdCode::new(IdKind::Lei, "LEI1"));
                c
            },
        ];
        let mut set = CandidateSet::new();
        id_overlap_companies(&companies, &[], &mut set);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn no_codes_no_candidates() {
        let companies = vec![
            CompanyRecord::new(RecordId(0), SourceId(0), "Acme"),
            CompanyRecord::new(RecordId(1), SourceId(1), "Acme"),
        ];
        let mut set = CandidateSet::new();
        id_overlap_companies(&companies, &[], &mut set);
        assert!(set.is_empty());
    }
}
