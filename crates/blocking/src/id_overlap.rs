//! ID-Overlap blocking (paper Section 5.3.1, blocking 1).
//!
//! Securities: candidate pairs are records (from different sources) sharing
//! at least one identifier code value. Companies: a company pair is a
//! candidate when any of their *securities* share an identifier (or their
//! own LEIs match) — "we evaluate against the companies whose associated
//! securities have a matching identifier with any of the securities issued
//! by each company record".
//!
//! This blocking is "equivalent to the benchmark heuristic often used to
//! match these types of financial records"; data drift makes some of its
//! pairs false (mergers) and misses others (overwritten/missing codes).
//! Being a near-linear hash join, both variants are flagged
//! [`cross_shard`](crate::strategy::Blocker::cross_shard)-capable: the
//! sharded pipeline re-runs them globally to propose boundary candidates.

use crate::candidates::{BlockingKind, CandidateSet};
use crate::strategy::{Blocker, BlockingContext, SplitSlice};
use gralmatch_records::{CompanyRecord, Record, RecordPair, SecurityRecord};
use gralmatch_util::FxHashMap;

/// Guard against degenerate codes shared by huge numbers of records: codes
/// with more than this many holders are skipped (quadratic pair blowup).
///
/// The guard makes this blocking **non-monotone**: an upsert batch that
/// pushes a code past the cap retracts pairs the standing population held,
/// and a delete can resurrect them. That is why the incremental engine
/// re-runs the hash joins over the full live population instead of joining
/// only the delta against a standing index — exactness would otherwise
/// need per-code retraction bookkeeping.
pub const MAX_CODE_HOLDERS: usize = 64;

/// Pair up positions sharing a posting; positions index the record view
/// handed to the blocker (ids need not be dense).
fn pairs_from_postings<R: Record>(
    postings: &FxHashMap<&str, Vec<u32>>,
    records: &SplitSlice<'_, R>,
    out: &mut CandidateSet,
) {
    for holders in postings.values() {
        if holders.len() < 2 || holders.len() > MAX_CODE_HOLDERS {
            continue;
        }
        for i in 0..holders.len() {
            for j in (i + 1)..holders.len() {
                let (a, b) = (
                    records.get(holders[i] as usize),
                    records.get(holders[j] as usize),
                );
                if a.source() != b.source() {
                    out.add(RecordPair::new(a.id(), b.id()), BlockingKind::IdOverlap);
                }
            }
        }
    }
}

/// Security join over a split view: code value → holder positions.
fn security_join(records: &SplitSlice<'_, SecurityRecord>, out: &mut CandidateSet) {
    let mut postings: FxHashMap<&str, Vec<u32>> = FxHashMap::default();
    for (position, record) in records.iter().enumerate() {
        for code in record.id_codes() {
            postings
                .entry(code.value.as_str())
                .or_default()
                .push(position as u32);
        }
    }
    pairs_from_postings(&postings, records, out);
}

/// ID-Overlap blocking for security records (shared identifier codes).
#[derive(Debug, Clone, Copy, Default)]
pub struct SecurityIdOverlap;

impl Blocker<SecurityRecord> for SecurityIdOverlap {
    fn kind(&self) -> BlockingKind {
        BlockingKind::IdOverlap
    }

    fn name(&self) -> &'static str {
        "id-overlap"
    }

    fn cross_shard(&self) -> bool {
        true
    }

    fn block(&self, records: &[SecurityRecord], _ctx: &BlockingContext, out: &mut CandidateSet) {
        security_join(&SplitSlice::new(records, &[]), out);
    }

    /// Zero-copy delta path: the join runs over both slices so the
    /// [`MAX_CODE_HOLDERS`] guard sees true union statistics (a code can
    /// cross the cap in either direction when the delta lands).
    fn block_delta(
        &self,
        new_records: &[SecurityRecord],
        standing_records: &[SecurityRecord],
        _ctx: &BlockingContext,
        out: &mut CandidateSet,
    ) {
        security_join(&SplitSlice::new(new_records, standing_records), out);
    }
}

/// ID-Overlap blocking for companies, matching through the identifier codes
/// of the securities each company issues (plus its own LEIs).
#[derive(Debug, Clone, Copy)]
pub struct CompanyIdOverlap<'a> {
    /// The security universe the companies' `securities` ids point into
    /// (always the **full** universe, even when the company slice is a
    /// shard — security ids index it directly).
    pub securities: &'a [SecurityRecord],
}

impl Blocker<CompanyRecord> for CompanyIdOverlap<'_> {
    fn kind(&self) -> BlockingKind {
        BlockingKind::IdOverlap
    }

    fn name(&self) -> &'static str {
        "id-overlap"
    }

    fn cross_shard(&self) -> bool {
        true
    }

    fn block(&self, records: &[CompanyRecord], _ctx: &BlockingContext, out: &mut CandidateSet) {
        self.join(&SplitSlice::new(records, &[]), out);
    }

    /// Zero-copy delta path; see [`SecurityIdOverlap::block_delta`].
    fn block_delta(
        &self,
        new_records: &[CompanyRecord],
        standing_records: &[CompanyRecord],
        _ctx: &BlockingContext,
        out: &mut CandidateSet,
    ) {
        self.join(&SplitSlice::new(new_records, standing_records), out);
    }
}

impl CompanyIdOverlap<'_> {
    fn join(&self, records: &SplitSlice<'_, CompanyRecord>, out: &mut CandidateSet) {
        // code value -> positions of companies whose securities (or self)
        // carry it.
        let mut postings: FxHashMap<&str, Vec<u32>> = FxHashMap::default();
        for (position, company) in records.iter().enumerate() {
            for code in company.id_codes() {
                postings
                    .entry(code.value.as_str())
                    .or_default()
                    .push(position as u32);
            }
            for &security_id in &company.securities {
                for code in self.securities[security_id.0 as usize].id_codes() {
                    postings
                        .entry(code.value.as_str())
                        .or_default()
                        .push(position as u32);
                }
            }
        }
        // A company may hold the same code through several securities; dedup
        // holders per code before pairing.
        for holders in postings.values_mut() {
            holders.sort_unstable();
            holders.dedup();
        }
        pairs_from_postings(&postings, records, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{IdCode, IdKind, RecordId, SourceId};

    fn security(id: u32, source: u16, isin: &str, issuer: u32) -> SecurityRecord {
        SecurityRecord::new(RecordId(id), SourceId(source), "S ORD", RecordId(issuer))
            .with_code(IdCode::new(IdKind::Isin, isin))
    }

    fn block_securities(securities: &[SecurityRecord]) -> CandidateSet {
        let mut set = CandidateSet::new();
        SecurityIdOverlap.block(securities, &BlockingContext::sequential(), &mut set);
        set
    }

    fn block_companies(companies: &[CompanyRecord], securities: &[SecurityRecord]) -> CandidateSet {
        let mut set = CandidateSet::new();
        CompanyIdOverlap { securities }.block(companies, &BlockingContext::sequential(), &mut set);
        set
    }

    #[test]
    fn securities_sharing_code_are_candidates() {
        let securities = vec![
            security(0, 0, "US111", 0),
            security(1, 1, "US111", 1),
            security(2, 2, "US222", 2),
        ];
        let set = block_securities(&securities);
        assert_eq!(set.len(), 1);
        assert!(set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(1)),
            BlockingKind::IdOverlap
        ));
    }

    #[test]
    fn same_source_pairs_skipped() {
        let securities = vec![security(0, 0, "US111", 0), security(1, 0, "US111", 1)];
        assert!(block_securities(&securities).is_empty());
    }

    #[test]
    fn degenerate_codes_skipped() {
        let securities: Vec<SecurityRecord> = (0..(MAX_CODE_HOLDERS as u32 + 10))
            .map(|i| security(i, (i % 5) as u16, "SHARED", i))
            .collect();
        assert!(
            block_securities(&securities).is_empty(),
            "over-shared code must be skipped"
        );
    }

    #[test]
    fn sparse_id_slices_emit_record_ids() {
        // Shard slice: positions 0/1 but global ids 40/70.
        let securities = vec![security(40, 0, "US111", 0), security(70, 1, "US111", 1)];
        let set = block_securities(&securities);
        assert!(set.from_blocking(
            RecordPair::new(RecordId(40), RecordId(70)),
            BlockingKind::IdOverlap
        ));
    }

    #[test]
    fn companies_matched_through_securities() {
        let securities = vec![security(0, 0, "US111", 0), security(1, 1, "US111", 1)];
        let mut companies = vec![
            CompanyRecord::new(RecordId(0), SourceId(0), "Acme"),
            CompanyRecord::new(RecordId(1), SourceId(1), "Acme Inc"),
        ];
        companies[0].securities = vec![RecordId(0)];
        companies[1].securities = vec![RecordId(1)];
        assert_eq!(block_companies(&companies, &securities).len(), 1);
    }

    #[test]
    fn companies_matched_through_lei() {
        let companies = vec![
            {
                let mut c = CompanyRecord::new(RecordId(0), SourceId(0), "Acme");
                c.id_codes.push(IdCode::new(IdKind::Lei, "LEI1"));
                c
            },
            {
                let mut c = CompanyRecord::new(RecordId(1), SourceId(2), "Acme Corp");
                c.id_codes.push(IdCode::new(IdKind::Lei, "LEI1"));
                c
            },
        ];
        assert_eq!(block_companies(&companies, &[]).len(), 1);
    }

    #[test]
    fn no_codes_no_candidates() {
        let companies = vec![
            CompanyRecord::new(RecordId(0), SourceId(0), "Acme"),
            CompanyRecord::new(RecordId(1), SourceId(1), "Acme"),
        ];
        assert!(block_companies(&companies, &[]).is_empty());
    }
}
