//! Sorted-Neighborhood blocking (classic EM baseline).
//!
//! Sorts records by a key (here: normalized name) and pairs each record
//! with its `window − 1` successors across sources. A standard pre-neural
//! blocking [Hernández & Stolfo 1995] the paper's related work alludes to;
//! included as a baseline to quantify what the paper's Token-Overlap
//! blocking buys (Sorted-Neighborhood misses reordered-word and acronym
//! variants that token overlap catches — measured by [`crate::recall`]).

use crate::candidates::{BlockingKind, CandidateSet};
use crate::strategy::{Blocker, BlockingContext};
use gralmatch_records::{Record, RecordPair};

/// Sorted-neighborhood parameters.
#[derive(Debug, Clone, Copy)]
pub struct SortedNeighborhoodConfig {
    /// Window size (each record pairs with the following `window - 1`).
    pub window: usize,
}

impl Default for SortedNeighborhoodConfig {
    fn default() -> Self {
        SortedNeighborhoodConfig { window: 10 }
    }
}

/// Sorted-neighborhood baseline (not part of the paper's recipes).
#[derive(Debug, Clone, Default)]
pub struct SortedNeighborhood {
    /// Window parameters.
    pub config: SortedNeighborhoodConfig,
}

/// Sort key: lowercase alphanumeric-only name.
fn sort_key(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect()
}

impl<R: Record + Sync> Blocker<R> for SortedNeighborhood {
    fn kind(&self) -> BlockingKind {
        BlockingKind::SortedNeighborhood
    }

    fn name(&self) -> &'static str {
        "sorted-neighborhood"
    }

    fn block(&self, records: &[R], _ctx: &BlockingContext, out: &mut CandidateSet) {
        let mut keyed: Vec<(String, usize)> = records
            .iter()
            .enumerate()
            .map(|(i, r)| (sort_key(r.name()), i))
            .collect();
        keyed.sort();
        for i in 0..keyed.len() {
            let (_, a) = &keyed[i];
            for (_, b) in keyed
                .iter()
                .skip(i + 1)
                .take(self.config.window.saturating_sub(1))
            {
                if records[*a].source() == records[*b].source() {
                    continue;
                }
                out.add(
                    RecordPair::new(records[*a].id(), records[*b].id()),
                    BlockingKind::SortedNeighborhood,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{CompanyRecord, RecordId, SourceId};

    fn company(id: u32, source: u16, name: &str) -> CompanyRecord {
        CompanyRecord::new(RecordId(id), SourceId(source), name)
    }

    fn run(records: &[CompanyRecord], window: usize) -> CandidateSet {
        let mut set = CandidateSet::new();
        SortedNeighborhood {
            config: SortedNeighborhoodConfig { window },
        }
        .block(records, &BlockingContext::sequential(), &mut set);
        set
    }

    #[test]
    fn adjacent_names_paired() {
        let records = vec![
            company(0, 0, "Crowdstrike"),
            company(1, 1, "Crowdstrike Inc"),
            company(2, 2, "Zymurgy Labs"),
        ];
        let set = run(&records, 2);
        assert!(set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(1)),
            BlockingKind::SortedNeighborhood
        ));
        assert!(!set.from_blocking(
            RecordPair::new(RecordId(0), RecordId(2)),
            BlockingKind::SortedNeighborhood
        ));
    }

    #[test]
    fn window_limits_pairs() {
        let records: Vec<CompanyRecord> = (0..20)
            .map(|i| company(i, (i % 4) as u16, &format!("Name{i:02}")))
            .collect();
        let set = run(&records, 3);
        // Each record pairs with <= 2 successors.
        assert!(set.len() <= 20 * 2);
    }

    #[test]
    fn misses_reordered_names() {
        // The weakness token overlap fixes: word order breaks sort locality.
        // Filler names sort between "crowd..." and "strike...", pushing the
        // reordered variants out of each other's window.
        let records = vec![
            company(0, 0, "Strike Crowd Platforms"),
            company(1, 1, "Crowd Strike Platforms"),
            company(2, 2, "Delta Industries"),
            company(3, 3, "Echo Systems"),
            company(4, 0, "Mango Networks"),
            company(5, 1, "Quartz Mining"),
        ];
        let set = run(&records, 2);
        assert!(
            !set.from_blocking(
                RecordPair::new(RecordId(0), RecordId(1)),
                BlockingKind::SortedNeighborhood
            ),
            "reordered names sort far apart"
        );
    }

    #[test]
    fn same_source_skipped() {
        let records = vec![company(0, 0, "Acme"), company(1, 0, "Acme B")];
        let set = run(&records, SortedNeighborhoodConfig::default().window);
        assert!(set.is_empty());
    }
}
