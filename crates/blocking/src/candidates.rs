//! Candidate pair sets with blocking provenance.
//!
//! The Pre Graph Cleanup step (paper Section 4.2.1) needs to know *which
//! blocking produced* a positively predicted edge — it removes Token-Overlap
//! edges inside oversized components. So candidate pairs carry a provenance
//! bitmask; a pair found by several blockings keeps all its flags.

use gralmatch_records::{RecordId, RecordPair};
use gralmatch_util::{FromJson, FxHashMap, Json, JsonError, ToJson};

/// Which blocking(s) proposed a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockingKind {
    /// Identifier-code overlap (Section 5.3.1, blocking 1).
    IdOverlap,
    /// Token overlap top-n (blocking 2).
    TokenOverlap,
    /// Issuer match, securities only (blocking 3).
    IssuerMatch,
    /// Sorted-neighborhood baseline (not used by the paper's pipelines).
    SortedNeighborhood,
}

impl BlockingKind {
    /// Bit flag of the kind.
    pub fn flag(&self) -> u8 {
        match self {
            BlockingKind::IdOverlap => 1,
            BlockingKind::TokenOverlap => 2,
            BlockingKind::IssuerMatch => 4,
            BlockingKind::SortedNeighborhood => 8,
        }
    }
}

/// A deduplicated set of candidate pairs with provenance flags.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    pairs: FxHashMap<RecordPair, u8>,
}

impl CandidateSet {
    /// Empty set.
    pub fn new() -> Self {
        CandidateSet::default()
    }

    /// Pre-size for `additional` more pairs (bulk loads: state decode,
    /// set unions).
    pub fn reserve(&mut self, additional: usize) {
        self.pairs.reserve(additional);
    }

    /// Add a pair from a blocking; merges provenance on duplicates.
    pub fn add(&mut self, pair: RecordPair, kind: BlockingKind) {
        *self.pairs.entry(pair).or_insert(0) |= kind.flag();
    }

    /// Bulk-add pairs from one blocking.
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = RecordPair>, kind: BlockingKind) {
        for pair in pairs {
            self.add(pair, kind);
        }
    }

    /// Add a pair with a raw provenance bitmask (ORed on duplicates) —
    /// used when re-tagging pairs whose flags were already folded.
    pub fn add_flags(&mut self, pair: RecordPair, flags: u8) {
        if flags != 0 {
            *self.pairs.entry(pair).or_insert(0) |= flags;
        }
    }

    /// Union another set into this one, merging provenance on shared pairs.
    /// Blockers running concurrently each fill a private set; the blocking
    /// stage folds them with this.
    pub fn merge(&mut self, other: &CandidateSet) {
        for (&pair, &flags) in &other.pairs {
            *self.pairs.entry(pair).or_insert(0) |= flags;
        }
    }

    /// Number of distinct candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Provenance flags of a pair (0 if absent).
    pub fn provenance(&self, pair: RecordPair) -> u8 {
        self.pairs.get(&pair).copied().unwrap_or(0)
    }

    /// Whether the pair is in the set (proposed by any blocking).
    pub fn contains(&self, pair: RecordPair) -> bool {
        self.pairs.contains_key(&pair)
    }

    /// Keep only the pairs for which `keep(pair, flags)` holds (e.g. drop
    /// pairs touching a retired record when maintaining a set in place).
    pub fn retain(&mut self, mut keep: impl FnMut(RecordPair, u8) -> bool) {
        self.pairs.retain(|&pair, flags| keep(pair, *flags));
    }

    /// Whether a pair was proposed by the given blocking.
    pub fn from_blocking(&self, pair: RecordPair, kind: BlockingKind) -> bool {
        self.provenance(pair) & kind.flag() != 0
    }

    /// Whether a pair was proposed *only* by the given blocking.
    pub fn only_from(&self, pair: RecordPair, kind: BlockingKind) -> bool {
        self.provenance(pair) == kind.flag()
    }

    /// All pairs, sorted for deterministic iteration.
    pub fn pairs_sorted(&self) -> Vec<RecordPair> {
        let mut out: Vec<RecordPair> = self.pairs.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Iterate `(pair, provenance)`.
    pub fn iter(&self) -> impl Iterator<Item = (RecordPair, u8)> + '_ {
        self.pairs.iter().map(|(&p, &f)| (p, f))
    }
}

/// The Section 4.2.1 pre-cleanup removability rule over a provenance
/// bitmask: the pair is Token-Overlap-sourced and **not** protected by an
/// identifier blocking (ID overlap or issuer match). One definition shared
/// by the cleanup stage, the sharded merge, and the incremental engine —
/// the rule is load-bearing for one-shot ≡ incremental exactness, so it
/// must not drift between execution paths.
pub fn text_only_provenance(flags: u8) -> bool {
    flags & BlockingKind::TokenOverlap.flag() != 0
        && flags & BlockingKind::IdOverlap.flag() == 0
        && flags & BlockingKind::IssuerMatch.flag() == 0
}

/// Compact persistence form: a sorted array of `[a, b, flags]` triplets
/// (sorted for deterministic output; the standing candidate sets of a
/// persisted incremental-pipeline state dominate its size, so the flat
/// triplet form beats per-pair objects).
impl ToJson for CandidateSet {
    fn to_json(&self) -> Json {
        let mut entries: Vec<(RecordPair, u8)> = self.iter().collect();
        entries.sort_unstable_by_key(|&(pair, _)| pair);
        Json::Arr(
            entries
                .into_iter()
                .map(|(pair, flags)| {
                    Json::Arr(vec![
                        Json::Num(pair.a.0 as f64),
                        Json::Num(pair.b.0 as f64),
                        Json::Num(flags as f64),
                    ])
                })
                .collect(),
        )
    }
}

impl FromJson for CandidateSet {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let entries = json.as_arr().ok_or_else(|| JsonError {
            message: "expected candidate-set array".into(),
        })?;
        let mut set = CandidateSet::new();
        for entry in entries {
            let triple = entry
                .as_arr()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| JsonError {
                    message: "expected [a, b, flags] triplet".into(),
                })?;
            let a = u32::from_json(&triple[0])?;
            let b = u32::from_json(&triple[1])?;
            let flags = u32::from_json(&triple[2])?;
            if flags == 0 || flags > u8::MAX as u32 {
                return Err(JsonError {
                    message: format!("bad provenance flags {flags}"),
                });
            }
            set.add_flags(RecordPair::new(RecordId(a), RecordId(b)), flags as u8);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::RecordId;

    fn pair(a: u32, b: u32) -> RecordPair {
        RecordPair::new(RecordId(a), RecordId(b))
    }

    #[test]
    fn dedup_merges_provenance() {
        let mut set = CandidateSet::new();
        set.add(pair(0, 1), BlockingKind::IdOverlap);
        set.add(pair(1, 0), BlockingKind::TokenOverlap);
        assert_eq!(set.len(), 1);
        assert!(set.from_blocking(pair(0, 1), BlockingKind::IdOverlap));
        assert!(set.from_blocking(pair(0, 1), BlockingKind::TokenOverlap));
        assert!(!set.only_from(pair(0, 1), BlockingKind::TokenOverlap));
    }

    #[test]
    fn only_from_single_blocking() {
        let mut set = CandidateSet::new();
        set.add(pair(2, 3), BlockingKind::TokenOverlap);
        assert!(set.only_from(pair(2, 3), BlockingKind::TokenOverlap));
        assert!(!set.from_blocking(pair(2, 3), BlockingKind::IdOverlap));
    }

    #[test]
    fn merge_unions_pairs_and_flags() {
        let mut left = CandidateSet::new();
        left.add(pair(0, 1), BlockingKind::IdOverlap);
        left.add(pair(2, 3), BlockingKind::TokenOverlap);
        let mut right = CandidateSet::new();
        right.add(pair(0, 1), BlockingKind::IssuerMatch);
        right.add(pair(4, 5), BlockingKind::IdOverlap);
        left.merge(&right);
        assert_eq!(left.len(), 3);
        assert!(left.from_blocking(pair(0, 1), BlockingKind::IdOverlap));
        assert!(left.from_blocking(pair(0, 1), BlockingKind::IssuerMatch));
        assert!(left.from_blocking(pair(4, 5), BlockingKind::IdOverlap));
    }

    #[test]
    fn add_flags_preserves_bitmask() {
        let mut set = CandidateSet::new();
        let flags = BlockingKind::IdOverlap.flag() | BlockingKind::IssuerMatch.flag();
        set.add_flags(pair(1, 2), flags);
        set.add_flags(pair(3, 4), 0); // no provenance -> not stored
        assert_eq!(set.provenance(pair(1, 2)), flags);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn absent_pair_no_provenance() {
        let set = CandidateSet::new();
        assert_eq!(set.provenance(pair(9, 10)), 0);
        assert!(set.is_empty());
    }

    #[test]
    fn sorted_pairs_deterministic() {
        let mut set = CandidateSet::new();
        set.add(pair(5, 1), BlockingKind::IdOverlap);
        set.add(pair(0, 3), BlockingKind::IdOverlap);
        assert_eq!(set.pairs_sorted(), vec![pair(0, 3), pair(1, 5)]);
    }

    #[test]
    fn retain_drops_pairs_touching_a_record() {
        let mut set = CandidateSet::new();
        set.add(pair(0, 1), BlockingKind::IdOverlap);
        set.add(pair(1, 2), BlockingKind::TokenOverlap);
        set.add(pair(3, 4), BlockingKind::TokenOverlap);
        let gone = RecordId(1);
        set.retain(|p, _| p.a != gone && p.b != gone);
        assert_eq!(set.len(), 1);
        assert!(set.contains(pair(3, 4)));
        assert!(!set.contains(pair(0, 1)));
    }

    #[test]
    fn json_round_trip_preserves_pairs_and_flags() {
        let mut set = CandidateSet::new();
        set.add(pair(5, 1), BlockingKind::IdOverlap);
        set.add(pair(5, 1), BlockingKind::TokenOverlap);
        set.add(pair(0, 3), BlockingKind::IssuerMatch);
        let text = gralmatch_util::ToJson::to_json(&set).to_compact_string();
        let back = <CandidateSet as gralmatch_util::FromJson>::from_json(
            &gralmatch_util::Json::parse(&text).unwrap(),
        )
        .unwrap();
        assert_eq!(back.len(), set.len());
        for (p, flags) in set.iter() {
            assert_eq!(back.provenance(p), flags);
        }
        // Deterministic output: serializing twice gives identical text.
        assert_eq!(
            gralmatch_util::ToJson::to_json(&set).to_compact_string(),
            text
        );
    }

    #[test]
    fn json_rejects_malformed_entries() {
        use gralmatch_util::{FromJson, Json};
        assert!(CandidateSet::from_json(&Json::parse("[[1,2]]").unwrap()).is_err());
        assert!(CandidateSet::from_json(&Json::parse("[[1,2,0]]").unwrap()).is_err());
        assert!(CandidateSet::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn flags_are_distinct_bits() {
        let flags = [
            BlockingKind::IdOverlap.flag(),
            BlockingKind::TokenOverlap.flag(),
            BlockingKind::IssuerMatch.flag(),
        ];
        assert_eq!(flags[0] & flags[1], 0);
        assert_eq!(flags[0] & flags[2], 0);
        assert_eq!(flags[1] & flags[2], 0);
    }
}
