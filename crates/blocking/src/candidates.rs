//! Candidate pair sets with blocking provenance.
//!
//! The Pre Graph Cleanup step (paper Section 4.2.1) needs to know *which
//! blocking produced* a positively predicted edge — it removes Token-Overlap
//! edges inside oversized components. So candidate pairs carry a provenance
//! bitmask; a pair found by several blockings keeps all its flags.

use gralmatch_records::RecordPair;
use gralmatch_util::FxHashMap;

/// Which blocking(s) proposed a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockingKind {
    /// Identifier-code overlap (Section 5.3.1, blocking 1).
    IdOverlap,
    /// Token overlap top-n (blocking 2).
    TokenOverlap,
    /// Issuer match, securities only (blocking 3).
    IssuerMatch,
    /// Sorted-neighborhood baseline (not used by the paper's pipelines).
    SortedNeighborhood,
}

impl BlockingKind {
    /// Bit flag of the kind.
    pub fn flag(&self) -> u8 {
        match self {
            BlockingKind::IdOverlap => 1,
            BlockingKind::TokenOverlap => 2,
            BlockingKind::IssuerMatch => 4,
            BlockingKind::SortedNeighborhood => 8,
        }
    }
}

/// A deduplicated set of candidate pairs with provenance flags.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    pairs: FxHashMap<RecordPair, u8>,
}

impl CandidateSet {
    /// Empty set.
    pub fn new() -> Self {
        CandidateSet::default()
    }

    /// Add a pair from a blocking; merges provenance on duplicates.
    pub fn add(&mut self, pair: RecordPair, kind: BlockingKind) {
        *self.pairs.entry(pair).or_insert(0) |= kind.flag();
    }

    /// Bulk-add pairs from one blocking.
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = RecordPair>, kind: BlockingKind) {
        for pair in pairs {
            self.add(pair, kind);
        }
    }

    /// Add a pair with a raw provenance bitmask (ORed on duplicates) —
    /// used when re-tagging pairs whose flags were already folded.
    pub fn add_flags(&mut self, pair: RecordPair, flags: u8) {
        if flags != 0 {
            *self.pairs.entry(pair).or_insert(0) |= flags;
        }
    }

    /// Union another set into this one, merging provenance on shared pairs.
    /// Blockers running concurrently each fill a private set; the blocking
    /// stage folds them with this.
    pub fn merge(&mut self, other: &CandidateSet) {
        for (&pair, &flags) in &other.pairs {
            *self.pairs.entry(pair).or_insert(0) |= flags;
        }
    }

    /// Number of distinct candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Provenance flags of a pair (0 if absent).
    pub fn provenance(&self, pair: RecordPair) -> u8 {
        self.pairs.get(&pair).copied().unwrap_or(0)
    }

    /// Whether a pair was proposed by the given blocking.
    pub fn from_blocking(&self, pair: RecordPair, kind: BlockingKind) -> bool {
        self.provenance(pair) & kind.flag() != 0
    }

    /// Whether a pair was proposed *only* by the given blocking.
    pub fn only_from(&self, pair: RecordPair, kind: BlockingKind) -> bool {
        self.provenance(pair) == kind.flag()
    }

    /// All pairs, sorted for deterministic iteration.
    pub fn pairs_sorted(&self) -> Vec<RecordPair> {
        let mut out: Vec<RecordPair> = self.pairs.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Iterate `(pair, provenance)`.
    pub fn iter(&self) -> impl Iterator<Item = (RecordPair, u8)> + '_ {
        self.pairs.iter().map(|(&p, &f)| (p, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::RecordId;

    fn pair(a: u32, b: u32) -> RecordPair {
        RecordPair::new(RecordId(a), RecordId(b))
    }

    #[test]
    fn dedup_merges_provenance() {
        let mut set = CandidateSet::new();
        set.add(pair(0, 1), BlockingKind::IdOverlap);
        set.add(pair(1, 0), BlockingKind::TokenOverlap);
        assert_eq!(set.len(), 1);
        assert!(set.from_blocking(pair(0, 1), BlockingKind::IdOverlap));
        assert!(set.from_blocking(pair(0, 1), BlockingKind::TokenOverlap));
        assert!(!set.only_from(pair(0, 1), BlockingKind::TokenOverlap));
    }

    #[test]
    fn only_from_single_blocking() {
        let mut set = CandidateSet::new();
        set.add(pair(2, 3), BlockingKind::TokenOverlap);
        assert!(set.only_from(pair(2, 3), BlockingKind::TokenOverlap));
        assert!(!set.from_blocking(pair(2, 3), BlockingKind::IdOverlap));
    }

    #[test]
    fn merge_unions_pairs_and_flags() {
        let mut left = CandidateSet::new();
        left.add(pair(0, 1), BlockingKind::IdOverlap);
        left.add(pair(2, 3), BlockingKind::TokenOverlap);
        let mut right = CandidateSet::new();
        right.add(pair(0, 1), BlockingKind::IssuerMatch);
        right.add(pair(4, 5), BlockingKind::IdOverlap);
        left.merge(&right);
        assert_eq!(left.len(), 3);
        assert!(left.from_blocking(pair(0, 1), BlockingKind::IdOverlap));
        assert!(left.from_blocking(pair(0, 1), BlockingKind::IssuerMatch));
        assert!(left.from_blocking(pair(4, 5), BlockingKind::IdOverlap));
    }

    #[test]
    fn add_flags_preserves_bitmask() {
        let mut set = CandidateSet::new();
        let flags = BlockingKind::IdOverlap.flag() | BlockingKind::IssuerMatch.flag();
        set.add_flags(pair(1, 2), flags);
        set.add_flags(pair(3, 4), 0); // no provenance -> not stored
        assert_eq!(set.provenance(pair(1, 2)), flags);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn absent_pair_no_provenance() {
        let set = CandidateSet::new();
        assert_eq!(set.provenance(pair(9, 10)), 0);
        assert!(set.is_empty());
    }

    #[test]
    fn sorted_pairs_deterministic() {
        let mut set = CandidateSet::new();
        set.add(pair(5, 1), BlockingKind::IdOverlap);
        set.add(pair(0, 3), BlockingKind::IdOverlap);
        assert_eq!(set.pairs_sorted(), vec![pair(0, 3), pair(1, 5)]);
    }

    #[test]
    fn flags_are_distinct_bits() {
        let flags = [
            BlockingKind::IdOverlap.flag(),
            BlockingKind::TokenOverlap.flag(),
            BlockingKind::IssuerMatch.flag(),
        ];
        assert_eq!(flags[0] & flags[1], 0);
        assert_eq!(flags[0] & flags[2], 0);
        assert_eq!(flags[1] & flags[2], 0);
    }
}
