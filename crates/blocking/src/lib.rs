//! Blocking strategies (paper Section 5.3.1).
//!
//! Evaluating all n·(n−1)/2 record pairs is prohibitive, so the pipeline
//! first selects candidate pairs through blockings:
//!
//! * [`id_overlap_securities`] / [`id_overlap_companies`] — identifier-code
//!   overlap (companies go through their securities' codes),
//! * [`token_overlap`] — top-n most token-overlapping records across
//!   sources (text alignment candidates),
//! * [`issuer_match`] — securities of previously matched issuers.
//!
//! Candidates carry provenance flags ([`CandidateSet`]) because the Pre
//! Graph Cleanup removes token-overlap edges in oversized components.

//!
//! Recipes compose declaratively through the [`BlockingStrategy`] trait:
//! each dataset's Table 2 blocking list is a `Vec<Box<dyn
//! BlockingStrategy<R>>>` folded by [`run_strategies`] (or by the pipeline
//! engine's blocking stage).

pub mod candidates;
pub mod id_overlap;
pub mod issuer_match;
pub mod recall;
pub mod sorted_neighborhood;
pub mod strategy;
pub mod token_overlap;

pub use candidates::{BlockingKind, CandidateSet};
pub use id_overlap::{id_overlap_companies, id_overlap_securities};
pub use issuer_match::issuer_match;
pub use recall::{blocking_quality, blocking_recall_by_kind, BlockingQuality};
pub use sorted_neighborhood::{sorted_neighborhood, SortedNeighborhoodConfig};
pub use strategy::{
    run_strategies, BlockingStrategy, CompanyIdOverlap, IssuerMatch, SecurityIdOverlap,
    SortedNeighborhood, TokenOverlap,
};
pub use token_overlap::{token_overlap, TokenOverlapConfig};
