//! Blocking strategies (paper Section 5.3.1).
//!
//! Evaluating all n·(n−1)/2 record pairs is prohibitive, so the pipeline
//! first selects candidate pairs through blockings:
//!
//! * [`SecurityIdOverlap`] / [`CompanyIdOverlap`] — identifier-code
//!   overlap (companies go through their securities' codes),
//! * [`TokenOverlap`] — top-n most token-overlapping records across
//!   sources (text alignment candidates),
//! * [`IssuerMatch`] — securities of previously matched issuers.
//!
//! Candidates carry provenance flags ([`CandidateSet`]) because the Pre
//! Graph Cleanup removes token-overlap edges in oversized components.
//!
//! Every strategy implements the unified [`Blocker`] trait; recipes are
//! `Vec<Box<dyn Blocker<R>>>` lists executed by [`run_blockers`] (or the
//! pipeline engine's blocking stage), which runs independent recipes
//! concurrently on the shared [`WorkerPool`](gralmatch_util::WorkerPool)
//! carried by the [`BlockingContext`]. Identifier-join blockers advertise
//! [`Blocker::cross_shard`] so a sharded pipeline can re-run them globally
//! for boundary candidates.

pub mod candidates;
pub mod id_overlap;
pub mod issuer_match;
pub mod recall;
pub mod sorted_neighborhood;
pub mod strategy;
pub mod token_overlap;

pub use candidates::{text_only_provenance, BlockingKind, CandidateSet};
pub use id_overlap::{CompanyIdOverlap, SecurityIdOverlap, MAX_CODE_HOLDERS};
pub use issuer_match::{IssuerMatch, MAX_GROUP_SECURITIES};
pub use recall::{blocking_quality, blocking_recall_by_kind, BlockingQuality};
pub use sorted_neighborhood::{SortedNeighborhood, SortedNeighborhoodConfig};
pub use strategy::{
    run_blocker_refs_traced, run_blockers, run_blockers_traced, Blocker, BlockerRun,
    BlockingContext,
};
pub use token_overlap::{TokenOverlap, TokenOverlapConfig};
