//! Property-style tests for `CandidateSet` provenance semantics.
//!
//! Seeded-random cases (the offline build has no `proptest`) checking the
//! invariants the Pre Graph Cleanup depends on: duplicate pairs merge their
//! provenance bitmasks, iteration order is deterministic, and unioning
//! overlapping blockings never loses pairs or flags.

use gralmatch_blocking::{BlockingKind, CandidateSet};
use gralmatch_records::{RecordId, RecordPair};
use gralmatch_util::SplitRng;

const KINDS: [BlockingKind; 4] = [
    BlockingKind::IdOverlap,
    BlockingKind::TokenOverlap,
    BlockingKind::IssuerMatch,
    BlockingKind::SortedNeighborhood,
];

fn random_pair(rng: &mut SplitRng, universe: u32) -> RecordPair {
    loop {
        let a = rng.next_below(universe as usize) as u32;
        let b = rng.next_below(universe as usize) as u32;
        if a != b {
            return RecordPair::new(RecordId(a), RecordId(b));
        }
    }
}

/// A random `(pair, kind)` stream plus the reference model: a plain map of
/// pair → expected provenance bitmask.
fn random_additions(
    rng: &mut SplitRng,
    n: usize,
) -> (
    Vec<(RecordPair, BlockingKind)>,
    std::collections::HashMap<RecordPair, u8>,
) {
    let mut additions = Vec::with_capacity(n);
    let mut expected: std::collections::HashMap<RecordPair, u8> = std::collections::HashMap::new();
    for _ in 0..n {
        let pair = random_pair(rng, 20);
        let kind = KINDS[rng.next_below(KINDS.len())];
        additions.push((pair, kind));
        *expected.entry(pair).or_insert(0) |= kind.flag();
    }
    (additions, expected)
}

#[test]
fn add_merges_bitmask_flags_on_duplicates() {
    for case in 0..100u64 {
        let mut rng = SplitRng::new(0xB1).split_index(case);
        let (additions, expected) = random_additions(&mut rng, 120);
        let mut set = CandidateSet::new();
        for &(pair, kind) in &additions {
            set.add(pair, kind);
        }
        assert_eq!(set.len(), expected.len(), "case {case}");
        for (&pair, &flags) in &expected {
            assert_eq!(set.provenance(pair), flags, "case {case}: {pair:?}");
            for kind in KINDS {
                assert_eq!(
                    set.from_blocking(pair, kind),
                    flags & kind.flag() != 0,
                    "case {case}: {pair:?} {kind:?}"
                );
                assert_eq!(
                    set.only_from(pair, kind),
                    flags == kind.flag(),
                    "case {case}: {pair:?} {kind:?}"
                );
            }
        }
    }
}

#[test]
fn extend_is_equivalent_to_repeated_add() {
    for case in 0..100u64 {
        let mut rng = SplitRng::new(0xB2).split_index(case);
        let pairs: Vec<RecordPair> = (0..rng.next_below(80))
            .map(|_| random_pair(&mut rng, 20))
            .collect();
        let kind = KINDS[rng.next_below(KINDS.len())];

        let mut via_extend = CandidateSet::new();
        via_extend.extend(pairs.iter().copied(), kind);
        let mut via_add = CandidateSet::new();
        for &pair in &pairs {
            via_add.add(pair, kind);
        }
        assert_eq!(
            via_extend.pairs_sorted(),
            via_add.pairs_sorted(),
            "case {case}"
        );
        for &pair in &pairs {
            assert_eq!(
                via_extend.provenance(pair),
                via_add.provenance(pair),
                "case {case}"
            );
        }
    }
}

#[test]
fn pairs_sorted_is_deterministic_and_insertion_order_free() {
    for case in 0..100u64 {
        let mut rng = SplitRng::new(0xB3).split_index(case);
        let (additions, _) = random_additions(&mut rng, 100);

        let mut forward = CandidateSet::new();
        for &(pair, kind) in &additions {
            forward.add(pair, kind);
        }
        let mut backward = CandidateSet::new();
        for &(pair, kind) in additions.iter().rev() {
            backward.add(pair, kind);
        }

        let sorted = forward.pairs_sorted();
        // Deterministic: repeated calls agree; insertion order irrelevant.
        assert_eq!(sorted, forward.pairs_sorted(), "case {case}");
        assert_eq!(sorted, backward.pairs_sorted(), "case {case}");
        // Actually sorted and duplicate-free.
        assert!(sorted.windows(2).all(|w| w[0] < w[1]), "case {case}");
    }
}

#[test]
fn union_of_overlapping_blockings_preserves_counts_and_flags() {
    for case in 0..100u64 {
        let mut rng = SplitRng::new(0xB4).split_index(case);
        // Two overlapping blocking outputs over the same small universe.
        let first: Vec<RecordPair> = (0..rng.range_inclusive(1, 60))
            .map(|_| random_pair(&mut rng, 12))
            .collect();
        let second: Vec<RecordPair> = (0..rng.range_inclusive(1, 60))
            .map(|_| random_pair(&mut rng, 12))
            .collect();

        let mut union = CandidateSet::new();
        union.extend(first.iter().copied(), BlockingKind::IdOverlap);
        union.extend(second.iter().copied(), BlockingKind::TokenOverlap);

        // Count survives the union: distinct pairs of first ∪ second.
        let distinct: std::collections::HashSet<RecordPair> =
            first.iter().chain(second.iter()).copied().collect();
        assert_eq!(union.len(), distinct.len(), "case {case}");

        // Every pair keeps the flags of every blocking that proposed it.
        for pair in &distinct {
            assert_eq!(
                union.from_blocking(*pair, BlockingKind::IdOverlap),
                first.contains(pair),
                "case {case}"
            );
            assert_eq!(
                union.from_blocking(*pair, BlockingKind::TokenOverlap),
                second.contains(pair),
                "case {case}"
            );
        }

        // Iteration agrees with provenance lookups.
        for (pair, flags) in union.iter() {
            assert_eq!(union.provenance(pair), flags, "case {case}");
            assert_ne!(flags, 0, "case {case}: stored pair without provenance");
        }
    }
}
