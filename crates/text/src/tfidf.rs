//! TF-IDF weighting and cosine similarity.
//!
//! Used by diagnostics and the heuristic matcher to compare full record
//! texts; the trainable matcher uses hashed features instead (ngrams.rs)
//! but shares the same IDF intuition through frequency-aware training.

use crate::vocab::Vocabulary;
use gralmatch_util::FxHashMap;

/// A sparse TF-IDF vector: sorted `(token_id, weight)` pairs, L2-normalized.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TfIdfVector {
    entries: Vec<(u32, f64)>,
}

impl TfIdfVector {
    /// Cosine similarity with another vector (both are unit-normalized, so
    /// this is just the sparse dot product).
    pub fn cosine(&self, other: &TfIdfVector) -> f64 {
        let mut dot = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        dot
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

/// TF-IDF vectorizer bound to a [`Vocabulary`].
#[derive(Debug, Clone)]
pub struct TfIdf<'a> {
    vocab: &'a Vocabulary,
}

impl<'a> TfIdf<'a> {
    /// Create a vectorizer over a built vocabulary.
    pub fn new(vocab: &'a Vocabulary) -> Self {
        TfIdf { vocab }
    }

    /// Vectorize a token list: raw term frequency × smoothed IDF,
    /// L2-normalized. Unknown tokens are ignored.
    pub fn vectorize<S: AsRef<str>>(&self, tokens: &[S]) -> TfIdfVector {
        let mut counts: FxHashMap<u32, f64> = FxHashMap::default();
        for tok in tokens {
            if let Some(id) = self.vocab.get(tok.as_ref()) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut entries: Vec<(u32, f64)> = counts
            .into_iter()
            .map(|(id, tf)| (id, tf * self.vocab.idf(id)))
            .collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        let norm = entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut entries {
                *w /= norm;
            }
        }
        TfIdfVector { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_vocab(docs: &[&[&str]]) -> Vocabulary {
        let mut v = Vocabulary::new();
        for d in docs {
            v.add_document(d);
        }
        v
    }

    #[test]
    fn identical_docs_cosine_one() {
        let vocab = build_vocab(&[&["acme", "security"], &["other", "firm"]]);
        let tfidf = TfIdf::new(&vocab);
        let v1 = tfidf.vectorize(&["acme", "security"]);
        let v2 = tfidf.vectorize(&["acme", "security"]);
        assert!((v1.cosine(&v2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_docs_cosine_zero() {
        let vocab = build_vocab(&[&["acme"], &["other"]]);
        let tfidf = TfIdf::new(&vocab);
        let v1 = tfidf.vectorize(&["acme"]);
        let v2 = tfidf.vectorize(&["other"]);
        assert_eq!(v1.cosine(&v2), 0.0);
    }

    #[test]
    fn rare_tokens_dominate() {
        // "inc" appears everywhere; sharing it means little.
        let vocab = build_vocab(&[
            &["crowdstrike", "inc"],
            &["crowdstreet", "inc"],
            &["acme", "inc"],
            &["globex", "inc"],
        ]);
        let tfidf = TfIdf::new(&vocab);
        let a = tfidf.vectorize(&["crowdstrike", "inc"]);
        let b = tfidf.vectorize(&["crowdstrike", "llc"]);
        let c = tfidf.vectorize(&["acme", "inc"]);
        assert!(
            a.cosine(&b) > a.cosine(&c),
            "shared rare token beats shared boilerplate"
        );
    }

    #[test]
    fn unknown_tokens_ignored() {
        let vocab = build_vocab(&[&["acme"]]);
        let tfidf = TfIdf::new(&vocab);
        let v = tfidf.vectorize(&["never-seen", "acme"]);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn empty_doc_vectorizes_empty() {
        let vocab = build_vocab(&[&["acme"]]);
        let tfidf = TfIdf::new(&vocab);
        let v = tfidf.vectorize::<&str>(&[]);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.cosine(&tfidf.vectorize(&["acme"])), 0.0);
    }
}
