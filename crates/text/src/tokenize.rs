//! Word tokenization.
//!
//! Records are tokenized into lowercase alphanumeric runs. This is the
//! token space of the Token-Overlap blocking (paper Section 5.3.1) and the
//! unit the matcher's sequence-length budget (128/256 tokens) counts.

/// Tokenize into lowercase alphanumeric tokens, appending into `out`
/// (allocation-reusing variant for hot loops).
pub fn tokenize_into(text: &str, out: &mut Vec<String>) {
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            // Lowercasing char-by-char: `to_lowercase` can expand to
            // multiple chars (e.g. 'İ'), extend handles that.
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
}

/// Tokenize into a fresh vector.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_into(text, &mut out);
    out
}

/// Count tokens without allocating strings (sequence-length accounting).
pub fn count_tokens(text: &str) -> usize {
    let mut count = 0;
    let mut in_token = false;
    for c in text.chars() {
        if c.is_alphanumeric() {
            if !in_token {
                count += 1;
                in_token = true;
            }
        } else {
            in_token = false;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_space() {
        assert_eq!(
            tokenize("Crowdstrike Holdings, Inc."),
            vec!["crowdstrike", "holdings", "inc"]
        );
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("US31807756E"), vec!["us31807756e"]);
        assert_eq!(tokenize("Web 2.0"), vec!["web", "2", "0"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- !!! ...").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("ZÜRICH Österreich"), vec!["zürich", "österreich"]);
    }

    #[test]
    fn count_matches_tokenize() {
        for s in ["a b c", "", "Crowd-Strike Inc.", "  x  ", "123 abc!def"] {
            assert_eq!(count_tokens(s), tokenize(s).len(), "{s:?}");
        }
    }

    #[test]
    fn tokenize_into_reuses_buffer() {
        let mut buf = Vec::with_capacity(8);
        tokenize_into("one two", &mut buf);
        tokenize_into("three", &mut buf);
        assert_eq!(buf, vec!["one", "two", "three"]);
    }
}
