//! Character n-grams and feature hashing.
//!
//! The trainable matcher in `gralmatch-lm` represents a record pair as a
//! sparse vector of hashed character n-gram interactions. Feature hashing
//! ("the hashing trick") maps each n-gram to one of `dim` buckets with a
//! sign, avoiding a dictionary and bounding memory — the same engineering
//! used by fastText/Vowpal-Wabbit-style linear text models.

use gralmatch_util::hash::hash_bytes;

/// Extract all character n-grams of a lowercase-normalized string.
///
/// The string is padded implicitly by treating word boundaries as spaces
/// collapsed into single separators; grams shorter than `n` are skipped.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0);
    let normalized: Vec<char> = text
        .chars()
        .flat_map(|c| {
            if c.is_alphanumeric() {
                c.to_lowercase().collect::<Vec<_>>()
            } else {
                vec![' ']
            }
        })
        .collect();
    // Collapse runs of spaces.
    let mut cleaned: Vec<char> = Vec::with_capacity(normalized.len());
    for &c in &normalized {
        if c == ' ' && cleaned.last() == Some(&' ') {
            continue;
        }
        cleaned.push(c);
    }
    while cleaned.last() == Some(&' ') {
        cleaned.pop();
    }
    let cleaned: Vec<char> = cleaned.into_iter().skip_while(|&c| c == ' ').collect();
    if cleaned.len() < n {
        return Vec::new();
    }
    (0..=cleaned.len() - n)
        .map(|i| cleaned[i..i + n].iter().collect())
        .collect()
}

/// A sparse hashed feature: bucket index and signed weight contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HashedFeature {
    /// Bucket in `[0, dim)`.
    pub index: u32,
    /// +1.0 or -1.0 (sign hashing halves collision bias).
    pub sign: f32,
}

/// Hash one token/gram into a bucket of a `dim`-sized space, with a
/// namespace tag so the same gram in different feature groups (e.g. "shared
/// name gram" vs "description gram") maps independently.
#[inline]
pub fn hash_feature(namespace: u8, gram: &str, dim: u32) -> HashedFeature {
    debug_assert!(dim > 0);
    let mut buf = Vec::with_capacity(gram.len() + 1);
    buf.push(namespace);
    buf.extend_from_slice(gram.as_bytes());
    let h = hash_bytes(&buf);
    HashedFeature {
        index: (h % dim as u64) as u32,
        sign: if (h >> 63) == 0 { 1.0 } else { -1.0 },
    }
}

/// Hash all character n-grams of `text` into features.
pub fn hashed_ngram_features(namespace: u8, text: &str, n: usize, dim: u32) -> Vec<HashedFeature> {
    char_ngrams(text, n)
        .iter()
        .map(|g| hash_feature(namespace, g, dim))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngrams_of_simple_word() {
        assert_eq!(char_ngrams("acme", 3), vec!["acm", "cme"]);
        assert_eq!(char_ngrams("ab", 3), Vec::<String>::new());
    }

    #[test]
    fn ngrams_normalize_case_and_punct() {
        assert_eq!(char_ngrams("A-C me", 3), char_ngrams("a c ME!", 3));
    }

    #[test]
    fn ngrams_cross_word_boundary_with_space() {
        let grams = char_ngrams("ab cd", 3);
        assert!(grams.contains(&"b c".to_string()));
    }

    #[test]
    fn hash_feature_deterministic_and_in_range() {
        let f1 = hash_feature(0, "acm", 1 << 18);
        let f2 = hash_feature(0, "acm", 1 << 18);
        assert_eq!(f1, f2);
        assert!(f1.index < (1 << 18));
        assert!(f1.sign == 1.0 || f1.sign == -1.0);
    }

    #[test]
    fn namespaces_decorrelate() {
        let f1 = hash_feature(1, "acm", 1 << 20);
        let f2 = hash_feature(2, "acm", 1 << 20);
        assert_ne!((f1.index, f1.sign as i8), (f2.index, f2.sign as i8));
    }

    #[test]
    fn hashed_features_cover_text() {
        let feats = hashed_ngram_features(0, "crowdstrike", 3, 1 << 16);
        assert_eq!(feats.len(), "crowdstrike".len() - 2);
    }

    #[test]
    fn empty_text_no_features() {
        assert!(hashed_ngram_features(0, "", 3, 1024).is_empty());
        assert!(hashed_ngram_features(0, "!!", 3, 1024).is_empty());
    }
}
