//! Classic string similarity measures.
//!
//! Used by the heuristic baseline matcher, the paraphrase/typo artifacts'
//! sanity checks, and as hand-engineered features of the trainable matcher
//! (shared-name similarity is one of its strongest signals, mirroring what
//! attention learns in the paper's DistilBERT).

/// Levenshtein edit distance (two-row dynamic program, O(|a|·|b|) time,
/// O(min) memory).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Levenshtein similarity normalized into [0, 1]: `1 - d / max_len`.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in [0, 1].
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::with_capacity(a.len());
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare match sequences in order.
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let t = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by a shared prefix (up to 4 chars,
/// scaling factor 0.1 as standard).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard similarity of two token multisets, treated as sets.
pub fn jaccard<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let set_a: gralmatch_util::FxHashSet<&T> = a.iter().collect();
    let set_b: gralmatch_util::FxHashSet<&T> = b.iter().collect();
    let inter = set_a.intersection(&set_b).count();
    let union = set_a.len() + set_b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Dice coefficient over character n-grams — robust to small edits and word
/// reordering, the workhorse similarity for company-name alignment.
pub fn ngram_dice(a: &str, b: &str, n: usize) -> f64 {
    let grams_a = crate::ngrams::char_ngrams(a, n);
    let grams_b = crate::ngrams::char_ngrams(b, n);
    if grams_a.is_empty() && grams_b.is_empty() {
        return 1.0;
    }
    if grams_a.is_empty() || grams_b.is_empty() {
        return 0.0;
    }
    let set_a: gralmatch_util::FxHashSet<&str> = grams_a.iter().map(|s| s.as_str()).collect();
    let mut inter = 0usize;
    let mut seen: gralmatch_util::FxHashSet<&str> = gralmatch_util::FxHashSet::default();
    for g in &grams_b {
        if set_a.contains(g.as_str()) && seen.insert(g.as_str()) {
            inter += 1;
        }
    }
    let set_b_len = grams_b
        .iter()
        .map(|s| s.as_str())
        .collect::<gralmatch_util::FxHashSet<_>>()
        .len();
    2.0 * inter as f64 / (set_a.len() + set_b_len) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        // "crowdstr|ike" -> "crowdstr|eet": three substitutions.
        assert_eq!(levenshtein("crowdstrike", "crowdstreet"), 3);
    }

    #[test]
    fn levenshtein_symmetric() {
        assert_eq!(
            levenshtein("abcdef", "azced"),
            levenshtein("azced", "abcdef")
        );
    }

    #[test]
    fn normalized_levenshtein_range() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let v = normalized_levenshtein("microsoft", "microsft");
        assert!(v > 0.8 && v < 1.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-5);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-5);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_prefix_boost() {
        let jw = jaro_winkler("crowdstrike", "crowdstreet");
        let j = jaro("crowdstrike", "crowdstreet");
        assert!(jw > j, "shared prefix must boost");
        assert!(jw <= 1.0);
    }

    #[test]
    fn jaccard_token_sets() {
        let a = ["crowd", "strike", "inc"];
        let b = ["crowd", "strike", "holdings"];
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-9);
        assert_eq!(jaccard::<u32>(&[], &[]), 1.0);
        assert_eq!(jaccard(&["x"], &[]), 0.0);
    }

    #[test]
    fn dice_identical_and_disjoint() {
        assert_eq!(ngram_dice("acme", "acme", 3), 1.0);
        assert_eq!(ngram_dice("aaaa", "zzzz", 3), 0.0);
        let near = ngram_dice("crowdstrike platforms", "crowd strike platforms", 3);
        assert!(near > 0.6, "near-identical names should be similar: {near}");
    }

    #[test]
    fn dice_short_strings() {
        // Strings shorter than n produce no grams -> degenerate cases.
        assert_eq!(ngram_dice("ab", "ab", 3), 1.0);
        assert_eq!(ngram_dice("ab", "abcdef", 3), 0.0);
    }
}
