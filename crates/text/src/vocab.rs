//! Corpus vocabulary with document frequencies.
//!
//! The Token-Overlap blocking scores candidate records by how many tokens
//! they share; rare tokens are far more discriminative than common corporate
//! boilerplate ("inc", "holdings", "technologies"). The vocabulary assigns
//! dense token ids and tracks document frequency so both the blocking and
//! TF-IDF can downweight boilerplate.

use gralmatch_util::FxHashMap;

/// Dense token dictionary over a record corpus.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    token_to_id: FxHashMap<String, u32>,
    tokens: Vec<String>,
    doc_freq: Vec<u32>,
    num_docs: u32,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Register one document's tokens (duplicates within the document count
    /// once toward document frequency). Returns the document's token ids
    /// (with duplicates preserved, in order).
    pub fn add_document<S: AsRef<str>>(&mut self, tokens: &[S]) -> Vec<u32> {
        self.num_docs += 1;
        let mut ids = Vec::with_capacity(tokens.len());
        let mut seen_this_doc: gralmatch_util::FxHashSet<u32> =
            gralmatch_util::FxHashSet::default();
        for tok in tokens {
            let tok = tok.as_ref();
            let id = match self.token_to_id.get(tok) {
                Some(&id) => id,
                None => {
                    let id = self.tokens.len() as u32;
                    self.token_to_id.insert(tok.to_string(), id);
                    self.tokens.push(tok.to_string());
                    self.doc_freq.push(0);
                    id
                }
            };
            if seen_this_doc.insert(id) {
                self.doc_freq[id as usize] += 1;
            }
            ids.push(id);
        }
        ids
    }

    /// Look up a token id without inserting.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// The token string of an id.
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of documents seen.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Document frequency of a token id.
    pub fn doc_freq(&self, id: u32) -> u32 {
        self.doc_freq[id as usize]
    }

    /// Smoothed inverse document frequency: `ln((1 + N) / (1 + df)) + 1`.
    pub fn idf(&self, id: u32) -> f64 {
        ((1.0 + self.num_docs as f64) / (1.0 + self.doc_freq(id) as f64)).ln() + 1.0
    }

    /// Ids of tokens whose document frequency exceeds `fraction` of the
    /// corpus — the "boilerplate" tokens blockings may skip.
    pub fn frequent_tokens(&self, fraction: f64) -> Vec<u32> {
        let threshold = (self.num_docs as f64 * fraction).ceil() as u32;
        (0..self.tokens.len() as u32)
            .filter(|&id| self.doc_freq(id) >= threshold.max(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut v = Vocabulary::new();
        let ids = v.add_document(&["acme", "inc", "acme"]);
        assert_eq!(ids, vec![0, 1, 0]);
        assert_eq!(v.token(0), "acme");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let mut v = Vocabulary::new();
        v.add_document(&["acme", "acme", "acme"]);
        v.add_document(&["acme", "inc"]);
        assert_eq!(v.doc_freq(v.get("acme").unwrap()), 2);
        assert_eq!(v.doc_freq(v.get("inc").unwrap()), 1);
        assert_eq!(v.num_docs(), 2);
    }

    #[test]
    fn idf_orders_rarity() {
        let mut v = Vocabulary::new();
        for _ in 0..9 {
            v.add_document(&["inc"]);
        }
        v.add_document(&["inc", "zürich"]);
        let idf_common = v.idf(v.get("inc").unwrap());
        let idf_rare = v.idf(v.get("zürich").unwrap());
        assert!(idf_rare > idf_common);
    }

    #[test]
    fn frequent_tokens_threshold() {
        let mut v = Vocabulary::new();
        for i in 0..10 {
            if i < 8 {
                v.add_document(&["inc", &format!("unique{i}")]);
            } else {
                v.add_document(&[format!("unique{i}").as_str()]);
            }
        }
        let frequent = v.frequent_tokens(0.5);
        assert_eq!(frequent.len(), 1);
        assert_eq!(v.token(frequent[0]), "inc");
    }

    #[test]
    fn unknown_token_lookup() {
        let v = Vocabulary::new();
        assert_eq!(v.get("nothing"), None);
        assert!(v.is_empty());
    }
}
