//! String interning: dense `u32` symbol ids for tokens and grams.
//!
//! The pairwise featurization in `gralmatch-lm` compares the same record
//! against many candidates; interning every token and character trigram
//! once per *dataset* turns the per-pair work from string hashing and
//! allocation into integer comparisons over dense ids. The interner is the
//! substrate of that compile pass: it owns each distinct string exactly
//! once and hands out ids in first-appearance order, so id spaces stay
//! dense and side tables (per-symbol precomputed features) can be plain
//! vectors indexed by symbol.

use gralmatch_util::FxHashMap;
use std::sync::Arc;

/// A dense string-to-`u32` interner.
///
/// Ids are assigned in first-appearance order starting at 0 and are never
/// reused, so `Vec`s indexed by symbol id stay valid as the interner grows.
/// Each distinct string is heap-allocated exactly once (`Arc<str>` shared
/// between the lookup map and the id-indexed vec).
#[derive(Debug, Clone, Default)]
pub struct SymbolInterner {
    map: FxHashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl SymbolInterner {
    /// Empty interner.
    pub fn new() -> Self {
        SymbolInterner::default()
    }

    /// Id of `symbol`, interning it if unseen. Allocates only on first
    /// appearance.
    pub fn intern(&mut self, symbol: &str) -> u32 {
        if let Some(&id) = self.map.get(symbol) {
            return id;
        }
        let id = self.strings.len() as u32;
        let owned: Arc<str> = Arc::from(symbol);
        self.strings.push(Arc::clone(&owned));
        self.map.insert(owned, id);
        id
    }

    /// Id of `symbol` if already interned.
    pub fn get(&self, symbol: &str) -> Option<u32> {
        self.map.get(symbol).copied()
    }

    /// The string behind a symbol id.
    ///
    /// # Panics
    /// If `id` was never returned by [`SymbolInterner::intern`].
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Approximate heap footprint: string bytes plus per-entry bookkeeping
    /// (`Arc` refcount header, map + vec pointer slots, the id), for
    /// memory diagnostics.
    pub fn heap_bytes(&self) -> usize {
        // Two `usize` refcounts precede each Arc'd string's bytes.
        const ARC_HEADER: usize = 2 * std::mem::size_of::<usize>();
        let string_bytes: usize = self.strings.iter().map(|s| s.len() + ARC_HEADER).sum();
        string_bytes
            + self.strings.len()
                * (std::mem::size_of::<Arc<str>>() * 2 + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut interner = SymbolInterner::new();
        let a = interner.intern("acme");
        let b = interner.intern("zurich");
        assert_eq!((a, b), (0, 1));
        assert_eq!(interner.intern("acme"), a, "re-intern returns the same id");
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = SymbolInterner::new();
        for word in ["one", "two", "three"] {
            let id = interner.intern(word);
            assert_eq!(interner.resolve(id), word);
        }
        assert_eq!(interner.get("two"), Some(1));
        assert_eq!(interner.get("missing"), None);
    }

    #[test]
    fn empty_interner() {
        let interner = SymbolInterner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.get(""), None);
    }

    #[test]
    fn empty_string_is_a_symbol() {
        let mut interner = SymbolInterner::new();
        let id = interner.intern("");
        assert_eq!(interner.resolve(id), "");
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut interner = SymbolInterner::new();
        let before = interner.heap_bytes();
        interner.intern("some-reasonably-long-symbol");
        assert!(interner.heap_bytes() > before);
    }
}
