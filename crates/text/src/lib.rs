//! Text substrate: tokenization, string similarity, TF-IDF, feature hashing.
//!
//! The pairwise matcher and the token-overlap blocking both view records as
//! text. This crate provides the shared machinery:
//!
//! * [`tokenize()`] — lowercase alphanumeric word tokenization,
//! * [`similarity`] — Levenshtein, Jaro(-Winkler), Jaccard, n-gram Dice,
//! * [`Vocabulary`] — corpus token dictionary with document frequencies,
//! * [`TfIdf`] — TF-IDF weighting with cosine similarity,
//! * [`ngrams`] — character n-gram extraction and feature hashing (the
//!   feature space of the trainable matcher in `gralmatch-lm`),
//! * [`SymbolInterner`] — dense `u32` ids for tokens/grams (the substrate
//!   of the compiled featurization in `gralmatch-lm`).

pub mod intern;
pub mod ngrams;
pub mod similarity;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use intern::SymbolInterner;
pub use ngrams::{char_ngrams, hashed_ngram_features};
pub use similarity::{
    jaccard, jaro, jaro_winkler, levenshtein, ngram_dice, normalized_levenshtein,
};
pub use tfidf::TfIdf;
pub use tokenize::{tokenize, tokenize_into};
pub use vocab::Vocabulary;
