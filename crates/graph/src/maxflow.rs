//! Dinic max-flow / min s–t cut on unit-capacity undirected graphs.
//!
//! Serves two purposes: (1) the flow-based global-min-cut fallback for
//! components too large for Stoer–Wagner, and (2) an independent oracle for
//! property-testing the Stoer–Wagner implementation (their cut weights must
//! agree).
//!
//! Undirected unit edges are modelled as a pair of arcs with capacity 1 each
//! sharing residuals, the standard reduction (flow pushed one way consumes
//! the reverse arc's residual).

use crate::components::Subgraph;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct Arc {
    to: u32,
    cap: u32,
}

/// Dinic solver over the local indices of a [`Subgraph`].
#[derive(Debug, Clone)]
pub struct Dinic {
    arcs: Vec<Arc>,
    // head[v] = indices into `arcs` of v's outgoing arcs.
    head: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// Build the flow network from a subgraph (each undirected edge becomes
    /// two capacity-1 arcs that are each other's residual).
    pub fn from_subgraph(sub: &Subgraph) -> Self {
        let n = sub.num_nodes();
        let mut arcs = Vec::with_capacity(sub.edges.len() * 2);
        let mut head = vec![Vec::new(); n];
        for &(a, b) in &sub.edges {
            head[a as usize].push(arcs.len() as u32);
            arcs.push(Arc { to: b, cap: 1 });
            head[b as usize].push(arcs.len() as u32);
            arcs.push(Arc { to: a, cap: 1 });
        }
        Dinic {
            arcs,
            head,
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn bfs(&mut self, s: u32, t: u32) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = VecDeque::new();
        self.level[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &ai in &self.head[u as usize] {
                let arc = self.arcs[ai as usize];
                if arc.cap > 0 && self.level[arc.to as usize] < 0 {
                    self.level[arc.to as usize] = self.level[u as usize] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[t as usize] >= 0
    }

    fn dfs(&mut self, u: u32, t: u32, pushed: u32) -> u32 {
        if u == t {
            return pushed;
        }
        while self.iter[u as usize] < self.head[u as usize].len() {
            let ai = self.head[u as usize][self.iter[u as usize]] as usize;
            let Arc { to, cap } = self.arcs[ai];
            if cap > 0 && self.level[to as usize] == self.level[u as usize] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > 0 {
                    self.arcs[ai].cap -= d;
                    // Paired arc: even index pairs with +1, odd with -1.
                    let pair = ai ^ 1;
                    self.arcs[pair].cap += d;
                    return d;
                }
            }
            self.iter[u as usize] += 1;
        }
        0
    }

    /// Maximum flow from `s` to `t`, stopping early once `cap` is reached
    /// (useful when only cuts smaller than `cap` are interesting).
    pub fn max_flow_capped(&mut self, s: u32, t: u32, cap: u32) -> u32 {
        assert_ne!(s, t);
        let mut flow = 0;
        while flow < cap && self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(s, t, u32::MAX);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
                if flow >= cap {
                    break;
                }
            }
        }
        flow
    }

    /// Maximum flow from `s` to `t`.
    pub fn max_flow(&mut self, s: u32, t: u32) -> u32 {
        self.max_flow_capped(s, t, u32::MAX)
    }

    /// After a max-flow run, the s-side of the min cut: nodes reachable from
    /// `s` in the residual network. Returned as a boolean marker per node.
    pub fn min_cut_side(&self, s: u32) -> Vec<bool> {
        let n = self.head.len();
        let mut side = vec![false; n];
        let mut queue = VecDeque::new();
        side[s as usize] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &ai in &self.head[u as usize] {
                let arc = self.arcs[ai as usize];
                if arc.cap > 0 && !side[arc.to as usize] {
                    side[arc.to as usize] = true;
                    queue.push_back(arc.to);
                }
            }
        }
        side
    }
}

/// Convenience: the min s–t cut (weight and s-side marker) of a subgraph.
pub fn min_st_cut(sub: &Subgraph, s: u32, t: u32) -> (u32, Vec<bool>) {
    let mut dinic = Dinic::from_subgraph(sub);
    let flow = dinic.max_flow(s, t);
    (flow, dinic.min_cut_side(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sub_of(edges: &[(u32, u32)]) -> Subgraph {
        let g = Graph::from_edges(edges.iter().copied());
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        Subgraph::induce(&g, &nodes)
    }

    #[test]
    fn single_edge_flow() {
        let sub = sub_of(&[(0, 1)]);
        let (flow, side) = min_st_cut(&sub, 0, 1);
        assert_eq!(flow, 1);
        assert_eq!(side, vec![true, false]);
    }

    #[test]
    fn parallel_paths() {
        // 0-1-3 and 0-2-3: two edge-disjoint paths, flow 2.
        let sub = sub_of(&[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let (flow, _) = min_st_cut(&sub, 0, 3);
        assert_eq!(flow, 2);
    }

    #[test]
    fn bottleneck_bridge() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let (flow, side) = min_st_cut(&sub, 0, 5);
        assert_eq!(flow, 1);
        // s-side should be the first triangle.
        assert_eq!(side[..3], [true, true, true]);
        assert_eq!(side[3..], [false, false, false]);
    }

    #[test]
    fn complete_graph_k4() {
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let (flow, _) = min_st_cut(&sub, 0, 3);
        assert_eq!(flow, 3, "edge connectivity of K4 is 3");
    }

    #[test]
    fn capped_flow_stops_early() {
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut dinic = Dinic::from_subgraph(&sub);
        let flow = dinic.max_flow_capped(0, 3, 2);
        assert!(flow >= 2, "must reach the cap");
    }

    #[test]
    fn undirected_flow_symmetric() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)];
        let sub = sub_of(&edges);
        let (f_ab, _) = min_st_cut(&sub, 0, 2);
        let (f_ba, _) = min_st_cut(&sub, 2, 0);
        assert_eq!(f_ab, f_ba);
    }

    #[test]
    fn cut_side_partitions_flow_value() {
        // Cut edges crossing the side must equal the flow value.
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (1, 3), (3, 4)];
        let sub = sub_of(&edges);
        let (flow, side) = min_st_cut(&sub, 0, 4);
        let crossing = sub
            .edges
            .iter()
            .filter(|&&(a, b)| side[a as usize] != side[b as usize])
            .count();
        assert_eq!(crossing as u32, flow);
    }
}
