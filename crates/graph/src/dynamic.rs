//! Incremental cut-structure maintenance: the [`CutIndex`].
//!
//! The cleanup's phase-1 workhorse is [`most_balanced_bridge`]: per round
//! it re-induces the region it is splitting and runs a Tarjan scan —
//! O(region) per round even when the batch only re-added a handful of
//! known hub bridges. The `CutIndex` makes that structure *persistent
//! across batches*: it caches, per cleaned-graph component, the
//! Tarjan-derived decomposition — 2-edge-connected blocks (a growable
//! union-find over block ids), the bridge set, and the bridge forest
//! linking blocks — and maintains it under [`insert_edge`] /
//! [`remove_edge`] deltas:
//!
//! * an insert inside one block is a no-op (the block stays
//!   2-edge-connected);
//! * an insert that closes a cycle merges the blocks along the bridge-tree
//!   path between its endpoints — pure union-find, no rescan;
//! * an insert that joins two components links their trees (the new edge
//!   is exactly the new bridge);
//! * a remove of a bridge cuts the tree — an exact split;
//! * a remove *inside* a block may create bridges, so it only marks that
//!   block dirty — the Tarjan scan re-runs lazily over the dirty block's
//!   region (never the whole component) at the next query, reducing dirty
//!   structure to a fixpoint the way the CFS analysis collapses regions.
//!
//! Every query ([`structure_for`]) revalidates what it hands out: block
//! weights must match the region, the recorded bridges must form a
//! spanning tree over the region's blocks, and any inconsistency —
//! including deltas the caller failed to feed — degrades to a full region
//! rescan, which *is* the oracle computation. The fast path can therefore
//! only ever return the exact structure a fresh Tarjan scan would.
//!
//! [`insert_edge`]: CutIndex::insert_edge
//! [`remove_edge`]: CutIndex::remove_edge
//! [`structure_for`]: CutIndex::structure_for
//! [`most_balanced_bridge`]: crate::bridges::most_balanced_bridge

use crate::bridges::cut_structure;
use crate::components::{connected_components, Subgraph};
use crate::graph::{Edge, Graph};
use gralmatch_util::{FxHashMap, FxHashSet};

/// Maintenance counters, surfaced in cleanup stage traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutIndexStats {
    /// Nodes covered by Tarjan rescans the index had to run (dirty blocks
    /// plus full-region fallbacks). Steady-state churn should keep this
    /// near zero; a cold or invalidated index pays one region scan per
    /// touched component.
    pub rescanned_nodes: usize,
}

/// The cut structure of one region (a connected component), in the
/// region's local coordinates — directly comparable to what
/// [`cut_structure`] computes from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionStructure {
    /// Dense block id (`0..num_blocks`) per local node, first-seen in
    /// ascending local-node order.
    pub block_of: Vec<u32>,
    /// Number of 2-edge-connected blocks in the region.
    pub num_blocks: u32,
    /// Bridges as `(local edge, block of .0, block of .1)`.
    pub bridges: Vec<((u32, u32), u32, u32)>,
    /// False when the index had to fall back to a full region rescan.
    pub from_cache: bool,
}

/// Persistent incremental bridge / 2-edge-connected-block index over a
/// mutable graph (see the module docs for the maintenance rules).
///
/// The index does not own the graph: the caller applies each mutation to
/// its graph *and* feeds the same delta here. Queries take the induced
/// subgraph of the region being asked about, so rescans read the caller's
/// current adjacency.
#[derive(Debug, Default)]
pub struct CutIndex {
    /// Wholesale-invalidation epoch (model swap / recovery), bumped by
    /// [`invalidate_all`](CutIndex::invalidate_all).
    epoch: u64,
    /// Union-find parent per block id; fresh ids are appended by rescans,
    /// making stale unions unreachable (the union-find never splits).
    uf: Vec<u32>,
    /// Union-by-rank ranks.
    rank: Vec<u8>,
    /// Node count of each block, valid at root ids.
    weight: Vec<u32>,
    /// Block id per node (`u32::MAX` = unindexed), resolved through the
    /// union-find on read.
    node_block: Vec<u32>,
    /// Bridge forest: child block root → (parent block hint, bridge edge).
    /// Hints are resolved through the union-find on read.
    tree_parent: FxHashMap<u32, (u32, Edge)>,
    /// Node → neighbors across recorded bridges.
    bridge_adj: FxHashMap<u32, Vec<u32>>,
    /// Block roots whose interior may have lost 2-edge-connectivity.
    dirty: FxHashSet<u32>,
    /// Maintenance counters.
    pub stats: CutIndexStats,
}

impl CutIndex {
    /// An empty index: every query falls back to a region rescan until
    /// the structure is (re)built.
    pub fn new() -> Self {
        CutIndex::default()
    }

    /// The wholesale-invalidation epoch (bumped by
    /// [`invalidate_all`](CutIndex::invalidate_all) and
    /// [`rebuild_from`](CutIndex::rebuild_from)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drop all cached structure and bump the epoch. Queries degrade to
    /// full region rescans until components are touched again.
    pub fn invalidate_all(&mut self) {
        self.epoch += 1;
        self.uf.clear();
        self.rank.clear();
        self.weight.clear();
        self.node_block.clear();
        self.tree_parent.clear();
        self.bridge_adj.clear();
        self.dirty.clear();
    }

    /// Invalidate, then eagerly rebuild the structure of every component
    /// of `graph` (one scan pass, O(V + E)). Required after wholesale
    /// graph replacement: delta maintenance assumes an indexed node's
    /// edges are all represented, which only holds if the index was built
    /// from the same graph the deltas apply to.
    pub fn rebuild_from(&mut self, graph: &Graph) {
        self.invalidate_all();
        let rescans_before = self.stats.rescanned_nodes;
        for component in connected_components(graph) {
            if component.len() < 2 {
                continue;
            }
            let sub = Subgraph::induce(graph, &component);
            self.install_region_scan(&sub, &component);
        }
        // A rebuild is a bulk load, not a cache miss worth alarming on.
        self.stats.rescanned_nodes = rescans_before;
    }

    fn find(&mut self, mut b: u32) -> u32 {
        while self.uf[b as usize] != b {
            let grand = self.uf[self.uf[b as usize] as usize];
            self.uf[b as usize] = grand;
            b = grand;
        }
        b
    }

    fn fresh_block(&mut self, weight: u32) -> u32 {
        let id = self.uf.len() as u32;
        self.uf.push(id);
        self.rank.push(0);
        self.weight.push(weight);
        id
    }

    /// Union two block roots; weights add, dirtiness is inherited.
    /// Returns the surviving root.
    fn union_roots(&mut self, a: u32, b: u32) -> u32 {
        debug_assert!(self.uf[a as usize] == a && self.uf[b as usize] == b);
        if a == b {
            return a;
        }
        let (winner, loser) = if self.rank[a as usize] >= self.rank[b as usize] {
            (a, b)
        } else {
            (b, a)
        };
        if self.rank[winner as usize] == self.rank[loser as usize] {
            self.rank[winner as usize] += 1;
        }
        self.uf[loser as usize] = winner;
        self.weight[winner as usize] += self.weight[loser as usize];
        if self.dirty.remove(&loser) {
            self.dirty.insert(winner);
        }
        winner
    }

    /// Current block root of a node, if the node is indexed.
    fn block_root(&mut self, node: u32) -> Option<u32> {
        let slot = *self.node_block.get(node as usize)?;
        if slot == u32::MAX {
            return None;
        }
        Some(self.find(slot))
    }

    /// Block root of a node, creating a fresh singleton block for nodes
    /// the index has never seen (their first edge is being inserted).
    fn block_root_or_singleton(&mut self, node: u32) -> u32 {
        if self.node_block.len() <= node as usize {
            self.node_block.resize(node as usize + 1, u32::MAX);
        }
        match self.block_root(node) {
            Some(root) => root,
            None => {
                let block = self.fresh_block(1);
                self.node_block[node as usize] = block;
                block
            }
        }
    }

    /// The path of block roots from `start` to its tree root (inclusive).
    /// Corrupted parent chains (cycles) are cut short; the query-time
    /// validation turns whatever garbage remains into a region rescan.
    fn root_path(&mut self, start: u32) -> Vec<u32> {
        let mut path = vec![start];
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        seen.insert(start);
        let mut cur = start;
        while let Some(&(hint, _)) = self.tree_parent.get(&cur) {
            let parent = self.find(hint);
            if !seen.insert(parent) {
                break;
            }
            path.push(parent);
            cur = parent;
        }
        path
    }

    fn record_bridge(&mut self, a: u32, b: u32) {
        self.bridge_adj.entry(a).or_default().push(b);
        self.bridge_adj.entry(b).or_default().push(a);
    }

    fn erase_bridge(&mut self, a: u32, b: u32) {
        for (u, v) in [(a, b), (b, a)] {
            if let Some(list) = self.bridge_adj.get_mut(&u) {
                if let Some(pos) = list.iter().position(|&w| w == v) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.bridge_adj.remove(&u);
                }
            }
        }
    }

    /// Reverse the parent links along `path` (a [`root_path`] result) so
    /// the path's first block becomes the root of its tree.
    fn evert(&mut self, path: &[u32]) {
        let mut reversed: Vec<(u32, (u32, Edge))> = Vec::with_capacity(path.len());
        for window in path.windows(2) {
            let (child, parent) = (window[0], window[1]);
            if let Some((_, edge)) = self.tree_parent.remove(&child) {
                reversed.push((parent, (child, edge)));
            }
        }
        for (block, entry) in reversed {
            self.tree_parent.insert(block, entry);
        }
    }

    /// Feed one edge insertion (the caller has already added it to its
    /// graph). O(tree depth) plus union-find work.
    pub fn insert_edge(&mut self, a: u32, b: u32) {
        let ba = self.block_root_or_singleton(a);
        let bb = self.block_root_or_singleton(b);
        let (ra, rb) = (self.find(ba), self.find(bb));
        if ra == rb {
            // Inside one 2-edge-connected block: nothing changes.
            return;
        }
        let path_a = self.root_path(ra);
        let path_b = self.root_path(rb);
        if path_a.last() != path_b.last() {
            // Two components: the new edge is exactly the new bridge.
            // Re-root `b`'s tree at its own block, then hang it below
            // `a`'s block.
            self.evert(&path_b);
            self.tree_parent.insert(rb, (ra, Edge::new(a, b)));
            self.record_bridge(a, b);
        } else {
            // Same tree: the edge closes a cycle through the tree path
            // ra ‥ LCA ‥ rb — every block on it merges into one, and the
            // path's bridges stop being bridges. Pure union-find.
            let on_a: FxHashSet<u32> = path_a.iter().copied().collect();
            let lca = *path_b.iter().find(|block| on_a.contains(block)).unwrap();
            let mut merged: Vec<u32> = Vec::new();
            for path in [&path_a, &path_b] {
                for &block in path.iter().take_while(|&&block| block != lca) {
                    merged.push(block);
                }
            }
            merged.push(lca);
            let saved_parent = self.tree_parent.remove(&lca);
            for &block in &merged {
                if block == lca {
                    continue;
                }
                if let Some((_, edge)) = self.tree_parent.remove(&block) {
                    self.erase_bridge(edge.a, edge.b);
                }
            }
            let mut root = merged[0];
            for &block in &merged[1..] {
                root = self.union_roots(root, block);
            }
            if let Some(entry) = saved_parent {
                self.tree_parent.insert(root, entry);
            }
        }
    }

    /// Feed one edge removal (the caller has already removed it from its
    /// graph). Removing a recorded bridge cuts the tree exactly; removing
    /// a block-interior edge marks only that block dirty — the scan runs
    /// lazily, scoped to the block, at the next query.
    pub fn remove_edge(&mut self, a: u32, b: u32) {
        let (Some(ra), Some(rb)) = (self.block_root(a), self.block_root(b)) else {
            // An unindexed endpoint means the edge was never represented.
            return;
        };
        if ra == rb {
            self.dirty.insert(ra);
            return;
        }
        let edge = Edge::new(a, b);
        let child = [ra, rb].into_iter().find(|root| {
            self.tree_parent
                .get(root)
                .is_some_and(|(_, tree_edge)| *tree_edge == edge)
        });
        match child {
            Some(child) => {
                // Exact cut: the child side becomes its own tree root.
                self.tree_parent.remove(&child);
                self.erase_bridge(a, b);
            }
            None => {
                // The index never recorded this inter-block edge as the
                // tree link — stale structure. Degrade both sides to a
                // rescan rather than guess.
                self.erase_bridge(a, b);
                self.dirty.insert(ra);
                self.dirty.insert(rb);
            }
        }
    }

    /// The cut structure of `region` (a connected component of the
    /// caller's graph, sorted node ids), with `sub` its induced subgraph
    /// (`sub.locals == region`). Served from the maintained structure
    /// when it validates; dirty blocks are rescanned in place (scoped to
    /// the block); anything inconsistent falls back to one full region
    /// rescan — the from-scratch oracle.
    pub fn structure_for(&mut self, sub: &Subgraph, region: &[u32]) -> RegionStructure {
        debug_assert_eq!(sub.locals, region);
        // Pass 1: resolve blocks and rescan dirty ones, to fixpoint
        // (fresh blocks are clean and exact, so one round suffices).
        let Some(roots) = self.region_roots(region) else {
            return self.rescan_region(sub, region);
        };
        let mut by_root: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (local, &root) in roots.iter().enumerate() {
            by_root.entry(root).or_default().push(local as u32);
        }
        let mut needs_block_rescan: Vec<u32> = Vec::new();
        for (&root, locals) in &by_root {
            if self.weight[root as usize] as usize != locals.len() {
                // The block bleeds outside the region (or lost nodes):
                // the recorded shape cannot be trusted at all.
                return self.rescan_region(sub, region);
            }
            if self.dirty.contains(&root) {
                needs_block_rescan.push(root);
            }
        }
        if !needs_block_rescan.is_empty() {
            // Deterministic rescan order (affects only fresh-id layout).
            needs_block_rescan.sort_unstable_by_key(|root| by_root[root][0]);
            for root in needs_block_rescan {
                self.rescan_block(sub, region, &by_root[&root], root);
            }
        }
        // Pass 2: dense labels in first-seen region order, bridge
        // enumeration, and tree validation.
        let Some(roots) = self.region_roots(region) else {
            return self.rescan_region(sub, region);
        };
        let mut dense: FxHashMap<u32, u32> = FxHashMap::default();
        let mut block_of: Vec<u32> = Vec::with_capacity(region.len());
        for &root in &roots {
            let next = dense.len() as u32;
            block_of.push(*dense.entry(root).or_insert(next));
        }
        let num_blocks = dense.len() as u32;
        let mut bridges: Vec<((u32, u32), u32, u32)> = Vec::new();
        for (local, &node) in region.iter().enumerate() {
            let Some(list) = self.bridge_adj.get(&node) else {
                continue;
            };
            for &other in list {
                if node >= other {
                    continue;
                }
                let Ok(other_local) = region.binary_search(&other) else {
                    // A recorded bridge leaving the region: stale.
                    return self.rescan_region(sub, region);
                };
                let (x, y) = (block_of[local], block_of[other_local]);
                if x == y {
                    return self.rescan_region(sub, region);
                }
                bridges.push(((local as u32, other_local as u32), x, y));
            }
        }
        if !blocks_form_spanning_tree(num_blocks, &bridges) {
            return self.rescan_region(sub, region);
        }
        RegionStructure {
            block_of,
            num_blocks,
            bridges,
            from_cache: true,
        }
    }

    /// Block root per region node, or `None` if any node is unindexed.
    fn region_roots(&mut self, region: &[u32]) -> Option<Vec<u32>> {
        region
            .iter()
            .map(|&node| self.block_root(node))
            .collect::<Option<Vec<u32>>>()
    }

    /// Drop every recorded trace of the given nodes' blocks and bridges.
    fn purge_nodes(&mut self, nodes: &[u32]) {
        for &node in nodes {
            if let Some(root) = self.block_root(node) {
                self.dirty.remove(&root);
                self.tree_parent.remove(&root);
            }
            if let Some(list) = self.bridge_adj.remove(&node) {
                for other in list {
                    self.erase_bridge(node, other);
                }
            }
            if (node as usize) < self.node_block.len() {
                self.node_block[node as usize] = u32::MAX;
            }
        }
    }

    /// Install a fresh scan of a whole region: fresh block ids, bridges,
    /// and a bridge tree rooted at the region minimum's block.
    fn install_region_scan(&mut self, sub: &Subgraph, region: &[u32]) -> RegionStructure {
        if let Some(&max) = region.last() {
            if self.node_block.len() <= max as usize {
                self.node_block.resize(max as usize + 1, u32::MAX);
            }
        }
        self.purge_nodes(region);
        let cs = cut_structure(sub);
        let fresh: Vec<u32> = (0..cs.num_blocks).map(|_| self.fresh_block(0)).collect();
        for (local, &block) in cs.block_of.iter().enumerate() {
            let id = fresh[block as usize];
            self.node_block[region[local] as usize] = id;
            self.weight[id as usize] += 1;
        }
        let mut bridges: Vec<((u32, u32), u32, u32)> = Vec::with_capacity(cs.bridges.len());
        let mut block_adj: FxHashMap<u32, Vec<(u32, Edge)>> = FxHashMap::default();
        for &(la, lb) in &cs.bridges {
            let (ga, gb) = (region[la as usize], region[lb as usize]);
            self.record_bridge(ga, gb);
            let (x, y) = (cs.block_of[la as usize], cs.block_of[lb as usize]);
            bridges.push(((la, lb), x, y));
            let edge = Edge::new(ga, gb);
            block_adj.entry(x).or_default().push((y, edge));
            block_adj.entry(y).or_default().push((x, edge));
        }
        self.link_tree(&fresh, cs.block_of[0], &block_adj, None);
        self.stats.rescanned_nodes += region.len();
        RegionStructure {
            block_of: cs.block_of,
            num_blocks: cs.num_blocks,
            bridges,
            from_cache: false,
        }
    }

    /// BFS the (dense-labeled) block forest from `root`, writing parent
    /// links; `external_parent` hangs the root below an existing block.
    fn link_tree(
        &mut self,
        fresh: &[u32],
        root: u32,
        block_adj: &FxHashMap<u32, Vec<(u32, Edge)>>,
        external_parent: Option<(u32, Edge)>,
    ) {
        if let Some(entry) = external_parent {
            self.tree_parent.insert(fresh[root as usize], entry);
        }
        let mut visited = vec![false; fresh.len()];
        visited[root as usize] = true;
        let mut queue = vec![root];
        while let Some(block) = queue.pop() {
            let Some(neighbors) = block_adj.get(&block) else {
                continue;
            };
            for &(next, edge) in neighbors {
                if !visited[next as usize] {
                    visited[next as usize] = true;
                    self.tree_parent
                        .insert(fresh[next as usize], (fresh[block as usize], edge));
                    queue.push(next);
                }
            }
        }
    }

    fn rescan_region(&mut self, sub: &Subgraph, region: &[u32]) -> RegionStructure {
        self.install_region_scan(sub, region)
    }

    /// Rescan one dirty block in place: fresh blocks for its interior,
    /// re-attached to the surrounding tree through the block's unchanged
    /// external bridges. `locals` are the block's nodes as local indices
    /// into `sub` / `region` (ascending).
    fn rescan_block(&mut self, sub: &Subgraph, region: &[u32], locals: &[u32], old_root: u32) {
        // External bridges before the purge: recorded bridges from a
        // block node to a node outside the block.
        let globals: Vec<u32> = locals.iter().map(|&l| region[l as usize]).collect();
        let member: FxHashSet<u32> = globals.iter().copied().collect();
        let mut external: Vec<(u32, u32)> = Vec::new();
        for &g in &globals {
            if let Some(list) = self.bridge_adj.get(&g) {
                for &h in list {
                    if !member.contains(&h) {
                        external.push((g, h));
                    }
                }
            }
        }
        let old_parent = self.tree_parent.remove(&old_root);
        self.dirty.remove(&old_root);
        for &g in &globals {
            self.node_block[g as usize] = u32::MAX;
        }
        // Scan the block's interior only.
        let bsub = induce_within(sub, locals);
        let cs = cut_structure(&bsub);
        let fresh: Vec<u32> = (0..cs.num_blocks).map(|_| self.fresh_block(0)).collect();
        for (i, &block) in cs.block_of.iter().enumerate() {
            let id = fresh[block as usize];
            self.node_block[globals[i] as usize] = id;
            self.weight[id as usize] += 1;
        }
        let mut block_adj: FxHashMap<u32, Vec<(u32, Edge)>> = FxHashMap::default();
        for &(ba, bb) in &cs.bridges {
            let (ga, gb) = (globals[ba as usize], globals[bb as usize]);
            self.record_bridge(ga, gb);
            let edge = Edge::new(ga, gb);
            let (x, y) = (cs.block_of[ba as usize], cs.block_of[bb as usize]);
            block_adj.entry(x).or_default().push((y, edge));
            block_adj.entry(y).or_default().push((x, edge));
        }
        // Re-root the interior tree at the sub-block holding the old
        // parent bridge's interior endpoint, preserving the upward link.
        let inner_local = |g: u32| globals.binary_search(&g).ok();
        let root = old_parent
            .as_ref()
            .and_then(|&(_, edge)| inner_local(edge.a).or(inner_local(edge.b)))
            .map(|i| cs.block_of[i])
            .unwrap_or_else(|| cs.block_of[0]);
        self.link_tree(&fresh, root, &block_adj, old_parent);
        // Children hanging below the old block re-point at whichever
        // fresh sub-block actually carries their bridge endpoint.
        for &(g_in, h_out) in &external {
            let Some(child) = self.block_root(h_out) else {
                continue;
            };
            let matches = self
                .tree_parent
                .get(&child)
                .is_some_and(|&(_, edge)| edge == Edge::new(g_in, h_out));
            if matches {
                let sub_block = fresh[cs.block_of[inner_local(g_in).unwrap()] as usize];
                self.tree_parent
                    .insert(child, (sub_block, Edge::new(g_in, h_out)));
            }
        }
        self.stats.rescanned_nodes += locals.len();
    }
}

/// The recorded bridges must connect the region's blocks into exactly one
/// tree — the invariant the fast path rests on.
fn blocks_form_spanning_tree(num_blocks: u32, bridges: &[((u32, u32), u32, u32)]) -> bool {
    if bridges.len() + 1 != num_blocks as usize {
        return false;
    }
    if num_blocks == 1 {
        return true;
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_blocks as usize];
    for &(_, x, y) in bridges {
        adj[x as usize].push(y);
        adj[y as usize].push(x);
    }
    let mut seen = vec![false; num_blocks as usize];
    seen[0] = true;
    let mut stack = vec![0u32];
    let mut count = 1usize;
    while let Some(block) = stack.pop() {
        for &next in &adj[block as usize] {
            if !seen[next as usize] {
                seen[next as usize] = true;
                count += 1;
                stack.push(next);
            }
        }
    }
    count == num_blocks as usize
}

/// Induce the subgraph of `sub` on a subset of its local nodes
/// (ascending). The result's `locals` are the *original* graph ids, so a
/// nested region can be rescanned without going back to the owner graph.
fn induce_within(sub: &Subgraph, locals: &[u32]) -> Subgraph {
    let mut index: FxHashMap<u32, u32> = FxHashMap::default();
    for (i, &l) in locals.iter().enumerate() {
        index.insert(l, i as u32);
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); locals.len()];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, &l) in locals.iter().enumerate() {
        for &m in &sub.adj[l as usize] {
            if let Some(&j) = index.get(&m) {
                adj[i].push(j);
                if (i as u32) < j {
                    edges.push((i as u32, j));
                }
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    edges.sort_unstable();
    Subgraph {
        locals: locals.iter().map(|&l| sub.locals[l as usize]).collect(),
        adj,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridges::find_bridges;

    /// Oracle: the index's answer for every component must match a
    /// from-scratch scan of that component.
    fn assert_matches_scratch(index: &mut CutIndex, graph: &Graph) {
        for component in connected_components(graph) {
            if component.len() < 2 {
                continue;
            }
            let sub = Subgraph::induce(graph, &component);
            let structure = index.structure_for(&sub, &component);
            let scratch = cut_structure(&sub);
            let mut got: Vec<(u32, u32)> =
                structure.bridges.iter().map(|&(edge, _, _)| edge).collect();
            got.sort_unstable();
            assert_eq!(got, scratch.bridges, "bridges for {component:?}");
            assert_eq!(structure.num_blocks, scratch.num_blocks);
            // Same partition (labels may differ): equal label ⇔ equal label.
            let mut mapping: FxHashMap<u32, u32> = FxHashMap::default();
            for (i, &b) in structure.block_of.iter().enumerate() {
                let expect = scratch.block_of[i];
                assert_eq!(
                    *mapping.entry(b).or_insert(expect),
                    expect,
                    "block partition mismatch for {component:?}"
                );
            }
            // Bridges must be real bridges of the current subgraph.
            assert_eq!(
                got,
                find_bridges(&sub),
                "recorded bridges stale for {component:?}"
            );
        }
    }

    #[test]
    fn insert_joining_components_is_a_bridge() {
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        graph.add_edge(2, 3);
        index.insert_edge(2, 3);
        assert_matches_scratch(&mut index, &graph);
        assert_eq!(index.stats.rescanned_nodes, 0, "no rescan for a link");
    }

    #[test]
    fn insert_closing_cycle_merges_blocks_without_rescan() {
        // Path 0-1-2-3: four singleton blocks, three bridges.
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        graph.add_edge(0, 3);
        index.insert_edge(0, 3);
        assert_matches_scratch(&mut index, &graph);
        assert_eq!(
            index.stats.rescanned_nodes, 0,
            "cycle merge is pure union-find"
        );
    }

    #[test]
    fn insert_inside_block_is_noop() {
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        graph.add_edge(0, 2);
        index.insert_edge(0, 2);
        // Parallel-edge-free graph: (0,2) already existed, but even a
        // genuinely new chord inside a block changes nothing.
        graph.add_edge(1, 3);
        index.insert_edge(1, 3);
        assert_matches_scratch(&mut index, &graph);
    }

    #[test]
    fn remove_bridge_splits_exactly() {
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        graph.remove_edge(2, 3);
        index.remove_edge(2, 3);
        assert_matches_scratch(&mut index, &graph);
        assert_eq!(index.stats.rescanned_nodes, 0, "bridge cut is exact");
    }

    #[test]
    fn remove_interior_edge_rescans_only_the_block() {
        // A 4-cycle block hanging off a pendant chain.
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 1), (4, 5)]);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        // Drop one cycle edge: block {1,2,3,4} decays into a path.
        graph.remove_edge(2, 3);
        index.remove_edge(2, 3);
        assert_matches_scratch(&mut index, &graph);
        assert_eq!(
            index.stats.rescanned_nodes, 4,
            "only the dirty block rescans, not the 6-node component"
        );
    }

    #[test]
    fn component_splitting_missed_delta_degrades_to_rescan() {
        let mut graph = Graph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        // Remove the bridge behind the index's back: the recorded bridge
        // now points out of the queried region, which validation catches.
        graph.remove_edge(2, 3);
        assert_matches_scratch(&mut index, &graph);
        assert!(
            index.stats.rescanned_nodes > 0,
            "validation must catch this"
        );
    }

    #[test]
    fn invalidate_all_bumps_epoch_and_forgets() {
        let graph = Graph::from_edges([(0, 1), (1, 2)]);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        let epoch = index.epoch();
        index.invalidate_all();
        assert!(index.epoch() > epoch);
        let mut index2 = index;
        assert_matches_scratch(&mut index2, &graph);
        assert!(index2.stats.rescanned_nodes > 0, "cold after invalidation");
    }

    #[test]
    fn random_churn_always_matches_scratch() {
        // Deterministic xorshift so the test needs no external RNG.
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let n = 24u32;
        let mut graph = Graph::with_nodes(n as usize);
        let mut index = CutIndex::new();
        index.rebuild_from(&graph);
        let mut present: Vec<(u32, u32)> = Vec::new();
        for step in 0..400 {
            let remove = !present.is_empty() && next() % 3 == 0;
            if remove {
                let pick = (next() % present.len() as u64) as usize;
                let (a, b) = present.swap_remove(pick);
                graph.remove_edge(a, b);
                index.remove_edge(a, b);
            } else {
                let a = (next() % n as u64) as u32;
                let b = (next() % n as u64) as u32;
                if a == b {
                    continue;
                }
                if graph.add_edge(a, b) {
                    present.push(if a < b { (a, b) } else { (b, a) });
                    index.insert_edge(a, b);
                }
            }
            if step % 7 == 0 {
                assert_matches_scratch(&mut index, &graph);
            }
        }
        assert_matches_scratch(&mut index, &graph);
    }
}
