//! Tarjan bridge detection.
//!
//! A bridge is an edge whose removal disconnects its component — a min cut
//! of weight 1. Finding all bridges in one O(n + m) DFS lets the cleanup
//! (and diagnostics) shortcut the common case where a false-positive link
//! between two groups is a single edge, without running a full min-cut.

use crate::components::Subgraph;

/// A bridge together with the side it would split off.
///
/// Produced by [`most_balanced_bridge`]: removing `edge` disconnects the
/// (connected) subgraph into `child_side` and its complement. The child
/// side is the DFS subtree hanging below the bridge — the region "behind"
/// the articulation point at the bridge's parent endpoint — so a caller
/// recursing into the split can confine itself to the two known sides
/// without recomputing connected components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeSplit {
    /// The bridge, as a local index pair (canonical `a < b`).
    pub edge: (u32, u32),
    /// Local indices of the side split off by removing the bridge
    /// (sorted). The other side is the complement.
    pub child_side: Vec<u32>,
}

impl BridgeSplit {
    /// The split's balance: the size of its smaller side. Higher is more
    /// balanced (a bridge to a pendant vertex scores 1).
    pub fn balance(&self, num_nodes: usize) -> usize {
        self.child_side.len().min(num_nodes - self.child_side.len())
    }
}

/// The bridge whose removal splits a **connected** subgraph most evenly,
/// or `None` when the subgraph is 2-edge-connected (no bridge exists).
///
/// A bridge is a minimum edge cut of weight 1, so when one exists it is a
/// valid (and cheapest-possible) min-cut round: this function lets the
/// graph cleanup shatter bridge-rich mega-components in O(n + m) per
/// round instead of running Stoer–Wagner. Among all bridges the most
/// balanced one is chosen — halving a component bounds the total rounds
/// logarithmically where an arbitrary (e.g. pendant) bridge would peel
/// one node per round — with ties broken toward the smallest canonical
/// edge for determinism.
///
/// The input must be connected (the caller's invariant, as for
/// [`global_min_cut`](crate::mincut::global_min_cut)); this is
/// debug-asserted.
pub fn most_balanced_bridge(sub: &Subgraph) -> Option<BridgeSplit> {
    debug_assert!(
        sub.is_connected(),
        "most_balanced_bridge requires a connected subgraph"
    );
    let n = sub.num_nodes();
    let bridges = bridges_with_subtree_sizes(sub);
    let best = bridges
        .iter()
        .max_by_key(|(edge, _, size)| {
            let size = *size as usize;
            // Most balanced first; ties toward the smallest edge (Reverse
            // inside max_by_key picks the smallest on equal balance).
            (size.min(n - size), std::cmp::Reverse(*edge))
        })
        .copied()?;
    let (edge, child, _) = best;
    // The child side is the set reachable from the bridge's child endpoint
    // without crossing the bridge — one O(side) traversal.
    let other = if edge.0 == child { edge.1 } else { edge.0 };
    let mut seen = vec![false; n];
    seen[child as usize] = true;
    seen[other as usize] = true; // blocked: never cross the bridge
    let mut side = vec![child];
    let mut stack = vec![child];
    while let Some(u) = stack.pop() {
        for &v in &sub.adj[u as usize] {
            if !seen[v as usize] {
                seen[v as usize] = true;
                side.push(v);
                stack.push(v);
            }
        }
    }
    side.sort_unstable();
    Some(BridgeSplit {
        edge,
        child_side: side,
    })
}

/// Tarjan bridge DFS that also tracks subtree sizes: each entry is
/// `(canonical edge, child endpoint, child-subtree size)`.
fn bridges_with_subtree_sizes(sub: &Subgraph) -> Vec<((u32, u32), u32, u32)> {
    let n = sub.num_nodes();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut size = vec![1u32; n];
    let mut bridges = Vec::new();
    let mut timer = 0u32;

    #[derive(Clone, Copy)]
    struct Frame {
        node: u32,
        parent: u32,
        cursor: usize,
        parent_skipped: bool,
    }

    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        let mut stack = vec![Frame {
            node: root,
            parent: u32::MAX,
            cursor: 0,
            parent_skipped: false,
        }];
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;

        while let Some(frame) = stack.last_mut() {
            let u = frame.node;
            if frame.cursor < sub.adj[u as usize].len() {
                let v = sub.adj[u as usize][frame.cursor];
                frame.cursor += 1;
                if v == frame.parent && !frame.parent_skipped {
                    frame.parent_skipped = true;
                    continue;
                }
                if disc[v as usize] == u32::MAX {
                    disc[v as usize] = timer;
                    low[v as usize] = timer;
                    timer += 1;
                    stack.push(Frame {
                        node: v,
                        parent: u,
                        cursor: 0,
                        parent_skipped: false,
                    });
                } else {
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            } else {
                let popped = *frame;
                stack.pop();
                if let Some(parent_frame) = stack.last() {
                    let p = parent_frame.node;
                    low[p as usize] = low[p as usize].min(low[popped.node as usize]);
                    size[p as usize] += size[popped.node as usize];
                    if low[popped.node as usize] > disc[p as usize] {
                        let edge = if p < popped.node {
                            (p, popped.node)
                        } else {
                            (popped.node, p)
                        };
                        bridges.push((edge, popped.node, size[popped.node as usize]));
                    }
                }
            }
        }
    }
    bridges
}

/// The full cut structure of a region in one scan: every bridge plus the
/// 2-edge-connected block each node belongs to.
///
/// Blocks are the connected components of the region once all bridges are
/// removed; the block graph (blocks as nodes, bridges as edges) is a
/// forest, and a tree per connected region. Block ids are dense `0..`,
/// assigned in ascending local-node order, so the labeling is a pure
/// function of the subgraph — [`CutIndex`](crate::dynamic::CutIndex)
/// rescans rely on that determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutStructure {
    /// Bridges as local edge pairs (canonical `a < b`), sorted.
    pub bridges: Vec<(u32, u32)>,
    /// Dense block id (`0..num_blocks`) per local node.
    pub block_of: Vec<u32>,
    /// Number of 2-edge-connected blocks.
    pub num_blocks: u32,
}

/// Compute the [`CutStructure`] of a subgraph (any region, connected or
/// not): one Tarjan pass for the bridges, one BFS avoiding them for the
/// block labels — O(V + E) total.
pub fn cut_structure(sub: &Subgraph) -> CutStructure {
    let n = sub.num_nodes();
    let bridges = find_bridges(sub);
    let is_bridge = |a: u32, b: u32| {
        let edge = if a < b { (a, b) } else { (b, a) };
        bridges.binary_search(&edge).is_ok()
    };
    let mut block_of = vec![u32::MAX; n];
    let mut num_blocks = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    for start in 0..n as u32 {
        if block_of[start as usize] != u32::MAX {
            continue;
        }
        let block = num_blocks;
        num_blocks += 1;
        block_of[start as usize] = block;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in &sub.adj[u as usize] {
                if block_of[v as usize] == u32::MAX && !is_bridge(u, v) {
                    block_of[v as usize] = block;
                    stack.push(v);
                }
            }
        }
    }
    CutStructure {
        bridges,
        block_of,
        num_blocks,
    }
}

/// All bridges of a subgraph, as local edge pairs (canonical `a < b`),
/// sorted. Iterative DFS so deep components cannot overflow the stack.
pub fn find_bridges(sub: &Subgraph) -> Vec<(u32, u32)> {
    let n = sub.num_nodes();
    let mut disc = vec![u32::MAX; n]; // discovery time
    let mut low = vec![u32::MAX; n];
    let mut bridges = Vec::new();
    let mut timer = 0u32;

    // Iterative DFS frames: (node, parent-edge-skip-flag, neighbor cursor).
    // parent is tracked as the *edge* (parent node id); parallel edges are
    // impossible in a simple graph so skipping one parent occurrence is
    // correct.
    #[derive(Clone, Copy)]
    struct Frame {
        node: u32,
        parent: u32, // u32::MAX for roots
        cursor: usize,
        parent_skipped: bool,
    }

    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        let mut stack = vec![Frame {
            node: root,
            parent: u32::MAX,
            cursor: 0,
            parent_skipped: false,
        }];
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;

        while let Some(frame) = stack.last_mut() {
            let u = frame.node;
            if frame.cursor < sub.adj[u as usize].len() {
                let v = sub.adj[u as usize][frame.cursor];
                frame.cursor += 1;
                if v == frame.parent && !frame.parent_skipped {
                    frame.parent_skipped = true;
                    continue;
                }
                if disc[v as usize] == u32::MAX {
                    disc[v as usize] = timer;
                    low[v as usize] = timer;
                    timer += 1;
                    stack.push(Frame {
                        node: v,
                        parent: u,
                        cursor: 0,
                        parent_skipped: false,
                    });
                } else {
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            } else {
                let popped = *frame;
                stack.pop();
                if let Some(parent_frame) = stack.last() {
                    let p = parent_frame.node;
                    low[p as usize] = low[p as usize].min(low[popped.node as usize]);
                    if low[popped.node as usize] > disc[p as usize] {
                        let (a, b) = if p < popped.node {
                            (p, popped.node)
                        } else {
                            (popped.node, p)
                        };
                        bridges.push((a, b));
                    }
                }
            }
        }
    }
    bridges.sort_unstable();
    bridges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::Subgraph;
    use crate::graph::Graph;

    fn sub_of(edges: &[(u32, u32)]) -> Subgraph {
        let g = Graph::from_edges(edges.iter().copied());
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        Subgraph::induce(&g, &nodes)
    }

    #[test]
    fn path_all_bridges() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(find_bridges(&sub), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn cycle_no_bridges() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0)]);
        assert!(find_bridges(&sub).is_empty());
    }

    #[test]
    fn barbell_single_bridge() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(find_bridges(&sub), vec![(2, 3)]);
    }

    #[test]
    fn two_components_each_with_bridge() {
        let sub = sub_of(&[(0, 1), (2, 3), (3, 4), (4, 2), (4, 5)]);
        assert_eq!(find_bridges(&sub), vec![(0, 1), (4, 5)]);
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        let edges: Vec<(u32, u32)> = (0..50_000u32).map(|i| (i, i + 1)).collect();
        let sub = sub_of(&edges);
        assert_eq!(find_bridges(&sub).len(), 50_000);
    }

    #[test]
    fn star_all_bridges() {
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(find_bridges(&sub).len(), 4);
    }

    #[test]
    fn balanced_bridge_on_barbell() {
        // Two triangles joined by the bridge (2, 3): a perfect 3/3 split.
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let split = most_balanced_bridge(&sub).unwrap();
        assert_eq!(split.edge, (2, 3));
        assert_eq!(split.balance(sub.num_nodes()), 3);
        // Child side is whichever triangle hangs below the bridge in DFS.
        assert!(split.child_side == vec![0, 1, 2] || split.child_side == vec![3, 4, 5]);
    }

    #[test]
    fn balanced_bridge_prefers_center_of_path() {
        // Path 0-1-2-3-4-5: every edge is a bridge; the most balanced is
        // (2, 3) with a 3/3 split.
        let sub = sub_of(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let split = most_balanced_bridge(&sub).unwrap();
        assert_eq!(split.edge, (2, 3));
        assert_eq!(split.balance(sub.num_nodes()), 3);
    }

    #[test]
    fn balanced_bridge_none_when_two_edge_connected() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0)]);
        assert!(most_balanced_bridge(&sub).is_none());
    }

    #[test]
    fn balanced_bridge_sides_partition_nodes() {
        // Star with pendant chains of differing length.
        let sub = sub_of(&[(0, 1), (0, 2), (2, 3), (3, 4), (0, 5), (5, 6)]);
        let n = sub.num_nodes();
        let split = most_balanced_bridge(&sub).unwrap();
        assert!(!split.child_side.is_empty());
        assert!(split.child_side.len() < n);
        // The child side must be exactly the nodes unreachable from the
        // other endpoint once the bridge is gone.
        let (a, b) = split.edge;
        let child = *split.child_side.first().unwrap();
        let _ = (a, b, child);
        for w in split.child_side.windows(2) {
            assert!(w[0] < w[1], "child_side must be sorted and unique");
        }
    }

    #[test]
    fn cut_structure_barbell() {
        // Two triangles joined by the bridge (2, 3).
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let cs = cut_structure(&sub);
        assert_eq!(cs.bridges, vec![(2, 3)]);
        assert_eq!(cs.num_blocks, 2);
        assert_eq!(cs.block_of, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn cut_structure_path_is_all_singleton_blocks() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 3)]);
        let cs = cut_structure(&sub);
        assert_eq!(cs.bridges.len(), 3);
        assert_eq!(cs.num_blocks, 4);
        assert_eq!(cs.block_of, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_structure_two_edge_connected_is_one_block() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0)]);
        let cs = cut_structure(&sub);
        assert!(cs.bridges.is_empty());
        assert_eq!(cs.num_blocks, 1);
    }

    #[test]
    fn cut_structure_labels_disconnected_regions() {
        let sub = sub_of(&[(0, 1), (2, 3), (3, 4), (4, 2)]);
        let cs = cut_structure(&sub);
        assert_eq!(cs.bridges, vec![(0, 1)]);
        assert_eq!(cs.num_blocks, 3);
        assert_eq!(cs.block_of, vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn balanced_bridge_deterministic_tie_break() {
        // Two symmetric pendant edges off a triangle: (0,3) and (1,4) both
        // split 1/4. Smallest canonical edge wins.
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0), (0, 3), (1, 4)]);
        let split = most_balanced_bridge(&sub).unwrap();
        assert_eq!(split.edge, (0, 3));
        assert_eq!(split.child_side, vec![3]);
    }
}
