//! Tarjan bridge detection.
//!
//! A bridge is an edge whose removal disconnects its component — a min cut
//! of weight 1. Finding all bridges in one O(n + m) DFS lets the cleanup
//! (and diagnostics) shortcut the common case where a false-positive link
//! between two groups is a single edge, without running a full min-cut.

use crate::components::Subgraph;

/// All bridges of a subgraph, as local edge pairs (canonical `a < b`),
/// sorted. Iterative DFS so deep components cannot overflow the stack.
pub fn find_bridges(sub: &Subgraph) -> Vec<(u32, u32)> {
    let n = sub.num_nodes();
    let mut disc = vec![u32::MAX; n]; // discovery time
    let mut low = vec![u32::MAX; n];
    let mut bridges = Vec::new();
    let mut timer = 0u32;

    // Iterative DFS frames: (node, parent-edge-skip-flag, neighbor cursor).
    // parent is tracked as the *edge* (parent node id); parallel edges are
    // impossible in a simple graph so skipping one parent occurrence is
    // correct.
    #[derive(Clone, Copy)]
    struct Frame {
        node: u32,
        parent: u32, // u32::MAX for roots
        cursor: usize,
        parent_skipped: bool,
    }

    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        let mut stack = vec![Frame {
            node: root,
            parent: u32::MAX,
            cursor: 0,
            parent_skipped: false,
        }];
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;

        while let Some(frame) = stack.last_mut() {
            let u = frame.node;
            if frame.cursor < sub.adj[u as usize].len() {
                let v = sub.adj[u as usize][frame.cursor];
                frame.cursor += 1;
                if v == frame.parent && !frame.parent_skipped {
                    frame.parent_skipped = true;
                    continue;
                }
                if disc[v as usize] == u32::MAX {
                    disc[v as usize] = timer;
                    low[v as usize] = timer;
                    timer += 1;
                    stack.push(Frame {
                        node: v,
                        parent: u,
                        cursor: 0,
                        parent_skipped: false,
                    });
                } else {
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            } else {
                let popped = *frame;
                stack.pop();
                if let Some(parent_frame) = stack.last() {
                    let p = parent_frame.node;
                    low[p as usize] = low[p as usize].min(low[popped.node as usize]);
                    if low[popped.node as usize] > disc[p as usize] {
                        let (a, b) = if p < popped.node {
                            (p, popped.node)
                        } else {
                            (popped.node, p)
                        };
                        bridges.push((a, b));
                    }
                }
            }
        }
    }
    bridges.sort_unstable();
    bridges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::Subgraph;
    use crate::graph::Graph;

    fn sub_of(edges: &[(u32, u32)]) -> Subgraph {
        let g = Graph::from_edges(edges.iter().copied());
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        Subgraph::induce(&g, &nodes)
    }

    #[test]
    fn path_all_bridges() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(find_bridges(&sub), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn cycle_no_bridges() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0)]);
        assert!(find_bridges(&sub).is_empty());
    }

    #[test]
    fn barbell_single_bridge() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(find_bridges(&sub), vec![(2, 3)]);
    }

    #[test]
    fn two_components_each_with_bridge() {
        let sub = sub_of(&[(0, 1), (2, 3), (3, 4), (4, 2), (4, 5)]);
        assert_eq!(find_bridges(&sub), vec![(0, 1), (4, 5)]);
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        let edges: Vec<(u32, u32)> = (0..50_000u32).map(|i| (i, i + 1)).collect();
        let sub = sub_of(&edges);
        assert_eq!(find_bridges(&sub).len(), 50_000);
    }

    #[test]
    fn star_all_bridges() {
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(find_bridges(&sub).len(), 4);
    }
}
