//! k-core decomposition.
//!
//! The core number of a node is the largest k such that the node belongs to
//! a subgraph where every node has degree ≥ k. In a prediction graph, a
//! correctly matched group of g records forms a (g−1)-core, while the
//! records pulled in by a single false edge have core number 1 — so core
//! numbers cheaply separate "solid group membership" from "dangling
//! attachment" and power the cleanup diagnostics.

use crate::components::Subgraph;

/// Core number of every node (local indices). Batagelj–Zaveršnik bucket
/// algorithm, O(n + m).
pub fn core_numbers(sub: &Subgraph) -> Vec<u32> {
    let n = sub.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = sub.adj.iter().map(|a| a.len() as u32).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort nodes by degree.
    let mut bin_start = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin_start[d as usize + 1] += 1;
    }
    for i in 1..bin_start.len() {
        bin_start[i] += bin_start[i - 1];
    }
    let mut position = vec![0usize; n];
    let mut order = vec![0u32; n];
    {
        let mut next = bin_start.clone();
        for v in 0..n as u32 {
            let d = degree[v as usize] as usize;
            position[v as usize] = next[d];
            order[next[d]] = v;
            next[d] += 1;
        }
    }

    let mut core = degree.clone();
    for i in 0..n {
        let v = order[i];
        core[v as usize] = degree[v as usize];
        for &u in &sub.adj[v as usize] {
            if degree[u as usize] > degree[v as usize] {
                // Move u one bucket down: swap with first node of its bucket.
                let du = degree[u as usize] as usize;
                let pu = position[u as usize];
                let pw = bin_start[du];
                let w = order[pw];
                if u != w {
                    order.swap(pu, pw);
                    position[u as usize] = pw;
                    position[w as usize] = pu;
                }
                bin_start[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// Maximum core number (the graph's degeneracy).
pub fn degeneracy(sub: &Subgraph) -> u32 {
    core_numbers(sub).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sub_of(edges: &[(u32, u32)]) -> Subgraph {
        let g = Graph::from_edges(edges.iter().copied());
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        Subgraph::induce(&g, &nodes)
    }

    #[test]
    fn clique_core_numbers() {
        // K4: every node has core number 3.
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(core_numbers(&sub), vec![3, 3, 3, 3]);
        assert_eq!(degeneracy(&sub), 3);
    }

    #[test]
    fn path_is_1_core() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(core_numbers(&sub), vec![1, 1, 1, 1]);
    }

    #[test]
    fn clique_with_pendant() {
        // Triangle {0,1,2} + pendant 3 attached to 2: pendant has core 1,
        // triangle nodes core 2.
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(core_numbers(&sub), vec![2, 2, 2, 1]);
    }

    #[test]
    fn false_bridge_detectable_by_core_numbers() {
        // Two K4s joined by one edge: all clique nodes keep core 3; the
        // bridge doesn't raise anyone's core number.
        let sub = sub_of(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
            (3, 4),
        ]);
        let core = core_numbers(&sub);
        assert!(core.iter().all(|&c| c == 3));
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::with_nodes(3);
        let sub = Subgraph::induce(&g, &[0, 1, 2]);
        assert_eq!(core_numbers(&sub), vec![0, 0, 0]);
        assert_eq!(degeneracy(&sub), 0);
    }
}
