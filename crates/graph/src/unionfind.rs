//! Disjoint-set union (union by rank + path halving).
//!
//! Used for the transitive-closure grouping: the entity groups of the paper
//! are exactly the connected components of the prediction graph, and when we
//! only need the partition (not the edges) union-find is the cheapest way to
//! get it.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Find with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        debug_assert!((x as usize) < self.parent.len());
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Union by rank. Returns `true` if the two sets were merged (i.e. they
    /// were previously distinct).
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.num_sets -= 1;
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Extract the sets as sorted vectors of members, largest first, ties by
    /// smallest member. Deterministic for reproducible outputs.
    pub fn sets(&mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        let mut by_root: gralmatch_util::FxHashMap<u32, Vec<u32>> =
            gralmatch_util::FxHashMap::default();
        for x in 0..n as u32 {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut sets: Vec<Vec<u32>> = by_root.into_values().collect();
        for s in &mut sets {
            s.sort_unstable();
        }
        sets.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.connected(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert_eq!(uf.num_sets(), 3);
    }

    #[test]
    fn transitivity() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn sets_extraction_ordering() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2); // {0,1,2}
        uf.union(4, 5); // {4,5}
        let sets = uf.sets();
        assert_eq!(sets[0], vec![0, 1, 2]);
        assert_eq!(sets[1], vec![4, 5]);
        assert_eq!(sets[2], vec![3]);
    }

    #[test]
    fn num_sets_tracks_merges() {
        let mut uf = UnionFind::new(10);
        for i in 0..9u32 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
