//! Undirected simple graph with dynamic edge removal.
//!
//! Node ids are dense `u32`s (the matching pipeline interns record ids before
//! building the graph). Adjacency is a `Vec` of hash sets: edge insertion,
//! removal, and membership are O(1), neighbor iteration is O(degree), and
//! memory stays proportional to the number of edges — the prediction graphs
//! of Table 4 reach ~1M edges.

use gralmatch_util::FxHashSet;

/// Dense node identifier.
pub type NodeId = u32;

/// An undirected edge, always stored with `a <= b` by [`Edge::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Create a canonical (sorted) edge. `a == b` self-loops are not allowed.
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        debug_assert_ne!(a, b, "self-loop");
        if a <= b {
            Edge { a, b }
        } else {
            Edge { a: b, b: a }
        }
    }

    /// The endpoint that is not `n`. Panics in debug builds if `n` is not an
    /// endpoint.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        debug_assert!(n == self.a || n == self.b);
        if n == self.a {
            self.b
        } else {
            self.a
        }
    }
}

/// Undirected simple graph.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<FxHashSet<NodeId>>,
    num_edges: usize,
}

impl Graph {
    /// Empty graph with no nodes.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Graph with `n` isolated nodes `0..n`.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adj: vec![FxHashSet::default(); n],
            num_edges: 0,
        }
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Ensure node `id` exists (extends the node range).
    pub fn ensure_node(&mut self, id: NodeId) {
        if (id as usize) >= self.adj.len() {
            self.adj.resize_with(id as usize + 1, FxHashSet::default);
        }
    }

    /// Add an undirected edge, creating nodes as needed.
    /// Returns `true` if the edge was newly inserted.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert_ne!(a, b, "self-loops are not representable");
        self.ensure_node(a.max(b));
        let inserted = self.adj[a as usize].insert(b);
        if inserted {
            self.adj[b as usize].insert(a);
            self.num_edges += 1;
        }
        inserted
    }

    /// Remove an edge if present. Returns `true` if it existed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if (a as usize) >= self.adj.len() || (b as usize) >= self.adj.len() {
            return false;
        }
        let removed = self.adj[a as usize].remove(&b);
        if removed {
            self.adj[b as usize].remove(&a);
            self.num_edges -= 1;
        }
        removed
    }

    /// Whether the edge `{a, b}` exists.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj.get(a as usize).is_some_and(|s| s.contains(&b))
    }

    /// Degree of a node (0 for out-of-range ids).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj.get(n as usize).map_or(0, |s| s.len())
    }

    /// Iterate the neighbors of `n`.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj
            .get(n as usize)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Iterate all edges once (canonical orientation `a < b`).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, nbrs)| {
            let a = a as NodeId;
            nbrs.iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| Edge { a, b })
        })
    }

    /// Iterate all node ids, including isolated nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.adj.len() as NodeId
    }

    /// Remove a batch of edges; returns how many actually existed.
    pub fn remove_edges(&mut self, edges: &[Edge]) -> usize {
        edges.iter().filter(|e| self.remove_edge(e.a, e.b)).count()
    }

    /// Build a graph from an edge list.
    pub fn from_edges(edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = Graph::new();
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut g = Graph::new();
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate edge (reversed) rejected");
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = Graph::from_edges([(0, 1), (1, 2)]);
        assert!(g.remove_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.remove_edge(0, 1), "double-remove is a no-op");
    }

    #[test]
    fn degree_and_neighbors() {
        let g = Graph::from_edges([(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.degree(99), 0);
        let mut nbrs: Vec<_> = g.neighbors(0).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 2, 3]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::from_edges([(0, 1), (1, 2), (2, 0)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort();
        assert_eq!(es, vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 2)]);
    }

    #[test]
    fn isolated_nodes_counted() {
        let mut g = Graph::with_nodes(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        g.ensure_node(9);
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new();
        g.add_edge(3, 3);
    }

    #[test]
    fn edge_canonical_order() {
        let e = Edge::new(7, 2);
        assert_eq!((e.a, e.b), (2, 7));
        assert_eq!(e.other(2), 7);
        assert_eq!(e.other(7), 2);
    }

    #[test]
    fn remove_edges_batch() {
        let mut g = Graph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let removed = g.remove_edges(&[Edge::new(0, 1), Edge::new(5, 6)]);
        assert_eq!(removed, 1);
        assert_eq!(g.num_edges(), 2);
    }
}
