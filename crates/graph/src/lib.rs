//! Graph substrate for GraLMatch.
//!
//! The paper's Graph Cleanup (Algorithm 1) repeatedly takes the largest
//! connected component of the pairwise-prediction graph and removes either a
//! *minimum edge cut* or the *maximum edge-betweenness-centrality* edge until
//! all components fall below size thresholds. This crate provides those
//! primitives from scratch:
//!
//! * [`Graph`] — an undirected simple graph with O(1) edge insert/remove,
//! * [`UnionFind`] — incremental connectivity for transitive-closure grouping,
//! * [`components`] — connected components (BFS) and induced subgraphs,
//! * [`mincut`] — global minimum edge cut via Stoer–Wagner,
//! * [`maxflow`] — Dinic max-flow / min s–t cut (cross-check + fallback),
//! * [`betweenness`] — Brandes' edge betweenness centrality,
//! * [`bridges`] — Tarjan bridge detection (cheap pre-filter / diagnostics).
//!
//! All algorithms operate on *induced subgraphs* given as a node list, since
//! the cleanup only ever looks at one component at a time.

pub mod articulation;
pub mod betweenness;
pub mod bridges;
pub mod components;
pub mod dynamic;
pub mod graph;
pub mod kcore;
pub mod maxflow;
pub mod mincut;
pub mod unionfind;

pub use articulation::articulation_points;
pub use betweenness::edge_betweenness;
pub use bridges::{cut_structure, find_bridges, most_balanced_bridge, BridgeSplit, CutStructure};
pub use components::{component_of, connected_components, largest_component, Subgraph};
pub use dynamic::{CutIndex, CutIndexStats, RegionStructure};
pub use graph::{Edge, Graph, NodeId};
pub use kcore::{core_numbers, degeneracy};
pub use maxflow::{min_st_cut, Dinic};
pub use mincut::{global_min_cut, MinCut};
pub use unionfind::UnionFind;
