//! Connected components and induced subgraphs.
//!
//! Algorithm 1 is expressed per connected component: it repeatedly inspects
//! the largest component, so we provide both a full decomposition (one BFS
//! sweep) and a [`Subgraph`] view that relabels a component's nodes to dense
//! local indices — the min-cut and betweenness implementations operate on
//! those local indices and return edges in the original labeling.

use crate::graph::{Edge, Graph, NodeId};
use gralmatch_util::FxHashMap;
use std::collections::VecDeque;

/// All connected components containing at least one node, largest first
/// (ties broken by smallest member id for determinism). Components of
/// isolated nodes are included as singletons.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut comps: Vec<Vec<NodeId>> = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if seen[start as usize] {
            continue;
        }
        seen[start as usize] = true;
        queue.push_back(start);
        let mut comp = vec![start];
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    comp.push(v);
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    comps
}

/// The component containing `start` (sorted node list).
pub fn component_of(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut seen = gralmatch_util::FxHashSet::default();
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    let mut comp = vec![start];
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if seen.insert(v) {
                comp.push(v);
                queue.push_back(v);
            }
        }
    }
    comp.sort_unstable();
    comp
}

/// The largest connected component, or `None` for an empty graph.
pub fn largest_component(g: &Graph) -> Option<Vec<NodeId>> {
    connected_components(g).into_iter().next()
}

/// A dense-relabelled view of an induced subgraph.
///
/// `locals[i]` is the original id of local node `i`; `edges` are pairs of
/// local indices. Algorithms run on local indices (contiguous, cache
/// friendly) and translate results back via [`Subgraph::to_global_edge`].
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Original node id for each local index.
    pub locals: Vec<NodeId>,
    /// Adjacency over local indices.
    pub adj: Vec<Vec<u32>>,
    /// Edge list over local indices (canonical `a < b`).
    pub edges: Vec<(u32, u32)>,
}

impl Subgraph {
    /// Induce the subgraph of `g` on `nodes`.
    pub fn induce(g: &Graph, nodes: &[NodeId]) -> Subgraph {
        let mut index: FxHashMap<NodeId, u32> = FxHashMap::default();
        index.reserve(nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            index.insert(n, i as u32);
        }
        let mut adj = vec![Vec::new(); nodes.len()];
        let mut edges = Vec::new();
        for (i, &n) in nodes.iter().enumerate() {
            for nbr in g.neighbors(n) {
                if let Some(&j) = index.get(&nbr) {
                    adj[i].push(j);
                    if (i as u32) < j {
                        edges.push((i as u32, j));
                    }
                }
            }
        }
        // Sort for determinism of downstream tie-breaking.
        for a in &mut adj {
            a.sort_unstable();
        }
        edges.sort_unstable();
        Subgraph {
            locals: nodes.to_vec(),
            adj,
            edges,
        }
    }

    /// Number of local nodes.
    pub fn num_nodes(&self) -> usize {
        self.locals.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Translate a local edge to original node ids.
    pub fn to_global_edge(&self, a: u32, b: u32) -> Edge {
        Edge::new(self.locals[a as usize], self.locals[b as usize])
    }

    /// Whether the subgraph is connected (trivially true for <= 1 node).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

/// All unordered pairs within each component: the *transitive closure* edges
/// implied by a prediction graph (paper Section 4, "Pre Graph Cleanup" stage
/// of the evaluation adds these to make each component a complete subgraph).
///
/// The count grows quadratically in component size, which is exactly the
/// phenomenon the paper highlights: one false-positive edge between two
/// groups of size k implies ~k^2 false transitive matches.
pub fn transitive_closure_pairs(components: &[Vec<NodeId>]) -> Vec<(NodeId, NodeId)> {
    let total: usize = components
        .iter()
        .map(|c| c.len() * (c.len().saturating_sub(1)) / 2)
        .sum();
    let mut pairs = Vec::with_capacity(total);
    for comp in components {
        for i in 0..comp.len() {
            for j in (i + 1)..comp.len() {
                pairs.push((comp[i], comp[j]));
            }
        }
    }
    pairs
}

/// Number of transitive-closure pairs without materializing them.
pub fn transitive_closure_count(components: &[Vec<NodeId>]) -> u64 {
    components
        .iter()
        .map(|c| (c.len() as u64) * (c.len() as u64 - 1) / 2)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_and_isolated() -> Graph {
        // {0,1,2} triangle, {3,4,5} triangle, 6 isolated
        let mut g = Graph::from_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        g.ensure_node(6);
        g
    }

    #[test]
    fn components_found_and_sorted() {
        let g = two_triangles_and_isolated();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4, 5]);
        assert_eq!(comps[2], vec![6]);
    }

    #[test]
    fn component_of_start() {
        let g = two_triangles_and_isolated();
        assert_eq!(component_of(&g, 4), vec![3, 4, 5]);
        assert_eq!(component_of(&g, 6), vec![6]);
    }

    #[test]
    fn largest_component_picked() {
        let mut g = two_triangles_and_isolated();
        g.add_edge(3, 6); // component {3,4,5,6} now largest
        assert_eq!(largest_component(&g).unwrap(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn induce_subgraph() {
        let g = two_triangles_and_isolated();
        let sub = Subgraph::induce(&g, &[3, 4, 5]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert!(sub.is_connected());
        let e = sub.to_global_edge(0, 1);
        assert_eq!(e, Edge::new(3, 4));
    }

    #[test]
    fn induce_partial_is_disconnected() {
        let g = two_triangles_and_isolated();
        let sub = Subgraph::induce(&g, &[0, 3]);
        assert_eq!(sub.num_edges(), 0);
        assert!(!sub.is_connected());
    }

    #[test]
    fn closure_pairs_quadratic() {
        let comps = vec![vec![0, 1, 2], vec![5, 6]];
        let pairs = transitive_closure_pairs(&comps);
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(5, 6)));
        assert_eq!(transitive_closure_count(&comps), 4);
    }

    #[test]
    fn empty_graph_no_components() {
        let g = Graph::new();
        assert!(connected_components(&g).is_empty());
        assert!(largest_component(&g).is_none());
    }
}
