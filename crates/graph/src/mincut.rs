//! Global minimum edge cut.
//!
//! The Graph Cleanup's first phase removes a *minimum edge cut* of the
//! largest component (paper Section 4.2, Algorithm 1 lines 3–6): the
//! smallest set of edges whose removal disconnects the component. False
//! positive pairwise predictions are usually the only link between two
//! densely connected groups, so the min cut is exactly those few edges.
//!
//! Two implementations:
//!
//! * **Stoer–Wagner** (`stoer_wagner`): exact global min cut in O(n³) with a
//!   dense merge table. Used for components up to [`SW_NODE_LIMIT`] nodes —
//!   the regime the cleanup operates in after pre-cleanup.
//! * **Flow-based** (`global_min_cut_flow`): fixes an arbitrary source and
//!   runs Dinic min s–t cuts to every other node, with two accelerations:
//!   early exit when a cut of weight 1 (a bridge) is found (no cut can be
//!   smaller in a connected graph) and flow capping at the best cut so far.
//!   Used above the node limit.
//!
//! [`global_min_cut`] picks automatically and both agree on the cut weight
//! (property-tested in `tests/`).

use crate::components::Subgraph;
use crate::maxflow::Dinic;

/// Stoer–Wagner is cubic; beyond this many nodes the flow-based method wins.
pub const SW_NODE_LIMIT: usize = 256;

/// Result of a minimum-cut computation on a [`Subgraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCut {
    /// Number of edges crossing the cut (all edges have unit weight).
    pub weight: u32,
    /// Local indices of one side of the partition (the smaller side).
    pub side: Vec<u32>,
    /// The cut edges, as local index pairs (canonical `a < b`).
    pub cut_edges: Vec<(u32, u32)>,
}

/// Compute a global minimum edge cut of a connected subgraph with >= 2 nodes.
///
/// Returns `None` for subgraphs with fewer than 2 nodes or no edges (nothing
/// to cut). The input must be connected; this is the caller's invariant
/// (components are connected by construction) and is debug-asserted.
pub fn global_min_cut(sub: &Subgraph) -> Option<MinCut> {
    if sub.num_nodes() < 2 || sub.num_edges() == 0 {
        return None;
    }
    debug_assert!(sub.is_connected(), "min cut requires a connected component");
    let cut = if sub.num_nodes() <= SW_NODE_LIMIT {
        stoer_wagner(sub)
    } else {
        global_min_cut_flow(sub)
    };
    Some(cut)
}

/// Derive the cut edge set and normalized (smaller) side from a side marker.
fn finish_cut(sub: &Subgraph, in_side: &[bool], weight: u32) -> MinCut {
    let n = sub.num_nodes();
    let side_count = in_side.iter().filter(|&&b| b).count();
    // Normalize: keep the smaller side for stable output (ties keep marked side).
    let keep_marked = side_count * 2 <= n;
    let mut side: Vec<u32> = (0..n as u32)
        .filter(|&i| in_side[i as usize] == keep_marked)
        .collect();
    side.sort_unstable();
    let mut cut_edges: Vec<(u32, u32)> = sub
        .edges
        .iter()
        .copied()
        .filter(|&(a, b)| in_side[a as usize] != in_side[b as usize])
        .collect();
    cut_edges.sort_unstable();
    debug_assert_eq!(cut_edges.len() as u32, weight);
    MinCut {
        weight,
        side,
        cut_edges,
    }
}

/// Stoer–Wagner minimum cut with unit edge weights.
///
/// Classic "minimum cut phase" formulation: repeatedly run maximum adjacency
/// search, record the cut-of-the-phase (the last added super-node against the
/// rest), then merge the last two added nodes. The best phase cut is a global
/// minimum cut. We track which original nodes each super-node contains so the
/// partition can be reported.
pub fn stoer_wagner(sub: &Subgraph) -> MinCut {
    let n = sub.num_nodes();
    assert!(n >= 2);
    // Dense weight matrix of the contracted graph.
    let mut w = vec![0u32; n * n];
    for &(a, b) in &sub.edges {
        w[a as usize * n + b as usize] += 1;
        w[b as usize * n + a as usize] += 1;
    }
    // merged[v] = original local nodes currently contracted into v.
    let mut merged: Vec<Vec<u32>> = (0..n as u32).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best_weight = u32::MAX;
    let mut best_side: Vec<u32> = Vec::new();

    while active.len() > 1 {
        // Maximum adjacency search starting from active[0].
        let m = active.len();
        let mut in_a = vec![false; m];
        let mut weights_to_a: Vec<u32> = active.iter().map(|&v| w[active[0] * n + v]).collect();
        in_a[0] = true;
        let mut prev = 0usize; // index into `active`
        let mut last = 0usize;
        for _ in 1..m {
            // Pick the unadded node most tightly connected to A.
            let mut best_i = usize::MAX;
            let mut best_w = 0u32;
            for i in 0..m {
                if !in_a[i] && (best_i == usize::MAX || weights_to_a[i] > best_w) {
                    best_i = i;
                    best_w = weights_to_a[i];
                }
            }
            prev = last;
            last = best_i;
            in_a[best_i] = true;
            let v_last = active[best_i];
            for i in 0..m {
                if !in_a[i] {
                    weights_to_a[i] += w[v_last * n + active[i]];
                }
            }
        }
        // Cut of the phase: super-node `last` vs the rest.
        let phase_weight = weights_to_a[last];
        if phase_weight < best_weight {
            best_weight = phase_weight;
            best_side = merged[active[last]].clone();
        }
        // Merge `last` into `prev`.
        let (v_prev, v_last) = (active[prev], active[last]);
        let moved = std::mem::take(&mut merged[v_last]);
        merged[v_prev].extend(moved);
        for &u in active.iter().take(m) {
            let add = w[v_last * n + u];
            w[v_prev * n + u] += add;
            w[u * n + v_prev] += add;
        }
        w[v_prev * n + v_prev] = 0;
        active.remove(last);
    }

    let mut in_side = vec![false; n];
    for &v in &best_side {
        in_side[v as usize] = true;
    }
    finish_cut(sub, &in_side, best_weight)
}

/// Flow-based global min cut: min over t of min-cut(s, t) for a fixed s.
///
/// Correct because any global cut separates s from *some* t. Early exits on a
/// weight-1 cut (optimal in a connected graph) and caps each Dinic run at the
/// best weight so far (a run reaching the cap cannot improve the answer).
pub fn global_min_cut_flow(sub: &Subgraph) -> MinCut {
    let n = sub.num_nodes();
    assert!(n >= 2);
    // Fix the max-degree node as source: it is least likely to be on the
    // small side of the cut, so s-t cuts tend to find the real cut quickly.
    let s = (0..n)
        .max_by_key(|&i| sub.adj[i].len())
        .expect("non-empty subgraph") as u32;

    let mut best: Option<MinCut> = None;
    for t in 0..n as u32 {
        if t == s {
            continue;
        }
        let cap = best.as_ref().map_or(u32::MAX, |b| b.weight);
        let mut dinic = Dinic::from_subgraph(sub);
        let flow = dinic.max_flow_capped(s, t, cap);
        if flow >= cap {
            continue; // cannot improve
        }
        let in_side = dinic.min_cut_side(s);
        let cut = finish_cut(sub, &in_side, flow);
        let done = cut.weight == 1;
        best = Some(cut);
        if done {
            break; // a bridge: no smaller cut exists in a connected graph
        }
    }
    best.expect("connected subgraph with >= 2 nodes has a cut")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Edge, Graph};

    fn sub_of(edges: &[(u32, u32)]) -> Subgraph {
        let g = Graph::from_edges(edges.iter().copied());
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        Subgraph::induce(&g, &nodes)
    }

    /// Two triangles joined by one bridge: min cut = that bridge.
    fn barbell() -> Subgraph {
        sub_of(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn bridge_is_min_cut_sw() {
        let cut = stoer_wagner(&barbell());
        assert_eq!(cut.weight, 1);
        assert_eq!(cut.cut_edges, vec![(2, 3)]);
        assert_eq!(cut.side.len(), 3);
    }

    #[test]
    fn bridge_is_min_cut_flow() {
        let cut = global_min_cut_flow(&barbell());
        assert_eq!(cut.weight, 1);
        assert_eq!(cut.cut_edges, vec![(2, 3)]);
    }

    #[test]
    fn double_link_cut() {
        // Two triangles joined by two edges: min cut weight 2. The optimum
        // is not unique (isolating a degree-2 node also costs 2), so only
        // the weight and the disconnection property are asserted.
        let sub = sub_of(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (2, 3),
            (0, 5),
        ]);
        let cut = stoer_wagner(&sub);
        assert_eq!(cut.weight, 2);
        assert_eq!(cut.cut_edges.len(), 2);
        let mut g = Graph::from_edges(sub.edges.iter().copied());
        g.remove_edges(
            &cut.cut_edges
                .iter()
                .map(|&(a, b)| Edge::new(a, b))
                .collect::<Vec<_>>(),
        );
        assert!(crate::components::connected_components(&g).len() >= 2);
        let flow_cut = global_min_cut_flow(&sub);
        assert_eq!(flow_cut.weight, 2);
    }

    #[test]
    fn path_graph_cut_is_one() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 3)]);
        let cut = global_min_cut(&sub).unwrap();
        assert_eq!(cut.weight, 1);
    }

    #[test]
    fn complete_graph_cut_is_degree() {
        // K4: min cut isolates one vertex, weight 3.
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let cut = stoer_wagner(&sub);
        assert_eq!(cut.weight, 3);
        assert_eq!(cut.side.len(), 1);
        assert_eq!(global_min_cut_flow(&sub).weight, 3);
    }

    #[test]
    fn two_node_graph() {
        let sub = sub_of(&[(0, 1)]);
        let cut = global_min_cut(&sub).unwrap();
        assert_eq!(cut.weight, 1);
        assert_eq!(cut.cut_edges, vec![(0, 1)]);
    }

    #[test]
    fn removing_cut_disconnects() {
        let sub = barbell();
        let cut = global_min_cut(&sub).unwrap();
        let mut g = Graph::from_edges(sub.edges.iter().map(|&(a, b)| (a, b)));
        for &(a, b) in &cut.cut_edges {
            g.remove_edge(a, b);
        }
        let comps = crate::components::connected_components(&g);
        assert!(comps.len() >= 2, "cut must disconnect the component");
    }

    #[test]
    fn singleton_and_empty_return_none() {
        let g = Graph::with_nodes(1);
        let sub = Subgraph::induce(&g, &[0]);
        assert!(global_min_cut(&sub).is_none());
    }

    #[test]
    fn side_is_smaller_half() {
        // Star graph: cut isolates a leaf; side must be the single leaf.
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let cut = global_min_cut(&sub).unwrap();
        assert_eq!(cut.weight, 1);
        assert_eq!(cut.side.len(), 1);
        assert_ne!(cut.side[0], 0, "center cannot be the small side");
    }
}
