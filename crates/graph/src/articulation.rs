//! Articulation points (cut vertices).
//!
//! A drifted record that was matched into two different groups (e.g. an
//! acquiree record carrying the acquirer's identifiers but its own name)
//! shows up as an articulation point of the prediction graph: removing it
//! disconnects the component. The cleanup diagnostics use this to surface
//! records that *personally* hold groups together — the paper's record #21
//! is exactly such a node.

use crate::components::Subgraph;

/// All articulation points of a subgraph (local indices, sorted).
/// Iterative Tarjan low-link, O(n + m).
pub fn articulation_points(sub: &Subgraph) -> Vec<u32> {
    let n = sub.num_nodes();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0u32;

    #[derive(Clone, Copy)]
    struct Frame {
        node: u32,
        parent: u32,
        cursor: usize,
        children: u32,
    }

    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        let mut stack = vec![Frame {
            node: root,
            parent: u32::MAX,
            cursor: 0,
            children: 0,
        }];
        while let Some(frame) = stack.last_mut() {
            let u = frame.node;
            if frame.cursor < sub.adj[u as usize].len() {
                let v = sub.adj[u as usize][frame.cursor];
                frame.cursor += 1;
                if disc[v as usize] == u32::MAX {
                    frame.children += 1;
                    disc[v as usize] = timer;
                    low[v as usize] = timer;
                    timer += 1;
                    stack.push(Frame {
                        node: v,
                        parent: u,
                        cursor: 0,
                        children: 0,
                    });
                } else if v != frame.parent {
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            } else {
                let popped = *frame;
                stack.pop();
                if let Some(parent_frame) = stack.last() {
                    let p = parent_frame.node;
                    low[p as usize] = low[p as usize].min(low[popped.node as usize]);
                    // Non-root: p is a cut vertex if a child subtree cannot
                    // reach above p.
                    if parent_frame.parent != u32::MAX
                        && low[popped.node as usize] >= disc[p as usize]
                    {
                        is_cut[p as usize] = true;
                    }
                } else {
                    // popped was the root: cut vertex iff >= 2 DFS children.
                    if popped.children >= 2 {
                        is_cut[popped.node as usize] = true;
                    }
                }
            }
        }
    }
    (0..n as u32).filter(|&v| is_cut[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sub_of(edges: &[(u32, u32)]) -> Subgraph {
        let g = Graph::from_edges(edges.iter().copied());
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        Subgraph::induce(&g, &nodes)
    }

    #[test]
    fn path_interior_nodes_are_cuts() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(articulation_points(&sub), vec![1, 2]);
    }

    #[test]
    fn cycle_has_no_cuts() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0)]);
        assert!(articulation_points(&sub).is_empty());
    }

    #[test]
    fn shared_record_between_groups_is_cut() {
        // Two triangles sharing node 2 (the drifted record).
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        assert_eq!(articulation_points(&sub), vec![2]);
    }

    #[test]
    fn star_center_is_cut() {
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(articulation_points(&sub), vec![0]);
    }

    #[test]
    fn root_with_two_children() {
        // DFS root 0 bridges two otherwise-disconnected edges.
        let sub = sub_of(&[(0, 1), (0, 2)]);
        assert_eq!(articulation_points(&sub), vec![0]);
    }

    #[test]
    fn disconnected_components_handled() {
        let sub = sub_of(&[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(articulation_points(&sub), vec![1]);
    }

    #[test]
    fn complete_graph_no_cuts() {
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(articulation_points(&sub).is_empty());
    }
}
