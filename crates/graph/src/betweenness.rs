//! Brandes' edge betweenness centrality (unweighted).
//!
//! Used by Algorithm 1's second phase (lines 7–10): once every component's
//! min cuts have brought sizes below γ, the cleanup repeatedly deletes the
//! single edge with the highest betweenness centrality until components fit
//! the expected group size μ. Betweenness
//!
//! ```text
//!   c_B(e) = Σ_{s,t ∈ V} σ(s,t | e) / σ(s,t)
//! ```
//!
//! is highest on edges that many shortest paths squeeze through — false
//! positive links between groups. Brandes' dependency accumulation computes
//! all-edge betweenness in O(n·m) per component, matching the complexity the
//! paper cites.

use crate::components::Subgraph;
use gralmatch_util::FxHashMap;
use std::collections::VecDeque;

/// Edge betweenness for every edge of `sub`, in the order of `sub.edges`.
///
/// Values follow the NetworkX convention for undirected graphs: each
/// unordered pair {s, t} contributes once (the raw two-directional
/// accumulation is halved).
pub fn edge_betweenness(sub: &Subgraph) -> Vec<f64> {
    let n = sub.num_nodes();
    let m = sub.edges.len();
    let mut edge_index: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    edge_index.reserve(m);
    for (i, &(a, b)) in sub.edges.iter().enumerate() {
        edge_index.insert((a, b), i);
    }
    let key = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };

    let mut centrality = vec![0.0f64; m];

    // Reused scratch buffers across sources.
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i32; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];

    for s in 0..n as u32 {
        // Init.
        sigma.iter_mut().for_each(|x| *x = 0.0);
        dist.iter_mut().for_each(|x| *x = -1);
        delta.iter_mut().for_each(|x| *x = 0.0);
        order.clear();
        preds.iter_mut().for_each(|p| p.clear());

        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &sub.adj[u as usize] {
                if dist[v as usize] < 0 {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
                if dist[v as usize] == dist[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                    preds[v as usize].push(u);
                }
            }
        }

        // Dependency accumulation in reverse BFS order.
        for &w in order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize];
            for &v in &preds[w as usize] {
                let contribution = sigma[v as usize] * coeff;
                let ei = edge_index[&key(v, w)];
                centrality[ei] += contribution;
                delta[v as usize] += contribution;
            }
        }
    }

    // Each unordered {s, t} was counted from both endpoints.
    for c in &mut centrality {
        *c *= 0.5;
    }
    centrality
}

/// The edge with maximum betweenness, as (local edge, centrality).
///
/// Ties are broken toward the lexicographically smallest edge so repeated
/// cleanups are deterministic. Returns `None` for edgeless subgraphs.
pub fn max_betweenness_edge(sub: &Subgraph) -> Option<((u32, u32), f64)> {
    let centrality = edge_betweenness(sub);
    let mut best: Option<(usize, f64)> = None;
    for (i, &c) in centrality.iter().enumerate() {
        match best {
            None => best = Some((i, c)),
            Some((bi, bc)) => {
                if c > bc + 1e-12 || (c >= bc - 1e-12 && sub.edges[i] < sub.edges[bi]) {
                    best = Some((i, c));
                }
            }
        }
    }
    best.map(|(i, c)| (sub.edges[i], c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn sub_of(edges: &[(u32, u32)]) -> Subgraph {
        let g = Graph::from_edges(edges.iter().copied());
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        Subgraph::induce(&g, &nodes)
    }

    #[test]
    fn path_graph_center_edge_highest() {
        // Path 0-1-2-3: edge (1,2) carries paths {0,3},{0,2},{1,3},{1,2} = 4.
        let sub = sub_of(&[(0, 1), (1, 2), (2, 3)]);
        let c = edge_betweenness(&sub);
        let idx_center = sub.edges.iter().position(|&e| e == (1, 2)).unwrap();
        let idx_end = sub.edges.iter().position(|&e| e == (0, 1)).unwrap();
        assert_eq!(c[idx_center], 4.0);
        assert_eq!(c[idx_end], 3.0);
    }

    #[test]
    fn bridge_between_triangles_has_max_centrality() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let ((a, b), c) = max_betweenness_edge(&sub).unwrap();
        assert_eq!((a, b), (2, 3));
        // Bridge carries all 3*3 = 9 cross pairs.
        assert!(c >= 9.0);
    }

    #[test]
    fn triangle_symmetric() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0)]);
        let c = edge_betweenness(&sub);
        assert!(c.iter().all(|&x| (x - 1.0).abs() < 1e-9), "{c:?}");
    }

    #[test]
    fn star_graph_each_edge_carries_leaf_paths() {
        // Star center 0 with leaves 1..=3: each edge carries its leaf's pair
        // to the other 2 leaves (each path split across 2 edges but sigma=1
        // through each), plus the center pair: c = (n-2) + 1 = 3... compute:
        // paths through edge (0,1): {1,2},{1,3},{0,1} = 3.
        let sub = sub_of(&[(0, 1), (0, 2), (0, 3)]);
        let c = edge_betweenness(&sub);
        assert!(c.iter().all(|&x| (x - 3.0).abs() < 1e-9), "{c:?}");
    }

    #[test]
    fn two_parallel_paths_split_sigma() {
        // Square 0-1-3-2-0: both diagonal pairs ({0,3} and {1,2}) have two
        // shortest paths, each contributing 0.5 per traversed edge. Every
        // edge carries: its endpoint pair (1.0) + 0.5 + 0.5 = 2.0.
        let sub = sub_of(&[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let c = edge_betweenness(&sub);
        assert!(c.iter().all(|&x| (x - 2.0).abs() < 1e-9), "{c:?}");
    }

    #[test]
    fn deterministic_tie_breaking() {
        let sub = sub_of(&[(0, 1), (1, 2), (2, 0)]);
        let ((a, b), _) = max_betweenness_edge(&sub).unwrap();
        assert_eq!((a, b), (0, 1), "smallest edge wins ties");
    }

    #[test]
    fn empty_subgraph() {
        let g = Graph::with_nodes(3);
        let sub = Subgraph::induce(&g, &[0, 1, 2]);
        assert!(max_betweenness_edge(&sub).is_none());
        assert!(edge_betweenness(&sub).is_empty());
    }

    #[test]
    fn disconnected_subgraph_supported() {
        // Betweenness is well-defined per component; cross-component pairs
        // simply contribute nothing.
        let sub = sub_of(&[(0, 1), (2, 3)]);
        let c = edge_betweenness(&sub);
        assert!(c.iter().all(|&x| (x - 1.0).abs() < 1e-9));
    }
}
