//! Worst-case "hub entity" workload for the graph cleanup.
//!
//! One popular record (the hub) accumulates a false-positive edge to the
//! representative of every group around it, welding them into a single
//! mega-component — the transitively-matched mega-group failure mode the
//! paper motivates, and the adversarial input for Algorithm 1: every batch
//! that touches the hub forces a re-clean of the whole component. Each
//! false edge is a *bridge*, so a bridge-first cleanup shatters the
//! component in O(V+E) rounds while a full min-cut recompute pays
//! Stoer–Wagner per round.
//!
//! Two views of the same workload:
//! * [`hub_graph`] — the raw prediction graph plus churn batches of
//!   re-added hub edges, for graph-level benchmarks ([`HubGraph`]);
//! * [`hub_companies`] / [`hub_churn_updates`] — company records whose
//!   name-token overlaps reproduce exactly that graph through the real
//!   blocking + heuristic-matching pipeline, for engine replay tests.

use gralmatch_records::{CompanyRecord, EntityId, RecordId, SourceId};

/// Shape of the hub workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HubConfig {
    /// Independent hub mega-components.
    pub hubs: usize,
    /// Groups welded onto each hub.
    pub groups_per_hub: usize,
    /// Records per group (each group is one clique).
    pub group_size: usize,
    /// Churn batches that keep touching the hubs.
    pub churn_batches: usize,
    /// Hub bridges re-added (per hub) by each churn batch.
    pub churn_rewires: usize,
}

impl HubConfig {
    /// The full-size workload: 4 hubs of 5000 groups of 4.
    pub fn full() -> Self {
        HubConfig {
            hubs: 4,
            groups_per_hub: 5000,
            group_size: 4,
            churn_batches: 20,
            churn_rewires: 8,
        }
    }

    /// Scale the per-hub group count by `factor` (CI runs use 0.01),
    /// keeping enough groups for the mega-component to stay *mega*
    /// relative to the thresholds.
    pub fn scaled(factor: f64) -> Self {
        let mut config = HubConfig::full();
        config.groups_per_hub = ((config.groups_per_hub as f64 * factor) as usize).max(12);
        config.churn_batches = ((config.churn_batches as f64 * factor.sqrt()) as usize).max(4);
        config
    }

    /// Nodes per hub component: the hub plus its groups.
    pub fn nodes_per_hub(&self) -> usize {
        1 + self.groups_per_hub * self.group_size
    }

    /// Total records/nodes in the dataset.
    pub fn num_nodes(&self) -> usize {
        self.hubs * self.nodes_per_hub()
    }

    /// Node id of hub `h`.
    pub fn hub_node(&self, h: usize) -> u32 {
        (h * self.nodes_per_hub()) as u32
    }

    /// Node id of member `j` of group `g` of hub `h` (member 0 is the
    /// group's representative, the endpoint of the hub bridge).
    pub fn member_node(&self, h: usize, g: usize, j: usize) -> u32 {
        (h * self.nodes_per_hub() + 1 + g * self.group_size + j) as u32
    }

    /// All hub bridges: one `(hub, representative)` edge per group. These
    /// are exactly the edges every cleanup pass cuts, and the edges a
    /// steady-churn batch re-adds to re-weld the mega-components.
    pub fn hub_bridges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::with_capacity(self.hubs * self.groups_per_hub);
        for h in 0..self.hubs {
            for g in 0..self.groups_per_hub {
                edges.push((self.hub_node(h), self.member_node(h, g, 0)));
            }
        }
        edges
    }
}

/// The graph-level hub workload.
#[derive(Debug, Clone)]
pub struct HubGraph {
    /// Dense node count (record ids 0..num_nodes).
    pub num_nodes: usize,
    /// Initial prediction edges: per-group cliques plus one hub bridge per
    /// group — the raw graph the bootstrap cleanup sees.
    pub bootstrap_edges: Vec<(u32, u32)>,
    /// One entry per churn batch: the hub bridges that batch re-adds
    /// (after the previous cleanup removed them), rotating deterministically
    /// through the groups.
    pub churn_batches: Vec<Vec<(u32, u32)>>,
    /// Size of each hub's initial mega-component.
    pub mega_component_size: usize,
}

/// Build the hub prediction graph and its churn schedule. Deterministic —
/// purely structural, no randomness needed for a worst case.
pub fn hub_graph(config: &HubConfig) -> HubGraph {
    let mut bootstrap_edges = Vec::new();
    for h in 0..config.hubs {
        for g in 0..config.groups_per_hub {
            for i in 0..config.group_size {
                for j in (i + 1)..config.group_size {
                    bootstrap_edges
                        .push((config.member_node(h, g, i), config.member_node(h, g, j)));
                }
            }
            bootstrap_edges.push((config.hub_node(h), config.member_node(h, g, 0)));
        }
    }
    let churn_batches = (0..config.churn_batches)
        .map(|batch| {
            let mut edges = Vec::with_capacity(config.hubs * config.churn_rewires);
            for h in 0..config.hubs {
                for r in 0..config.churn_rewires {
                    let g = (batch * config.churn_rewires + r) % config.groups_per_hub;
                    edges.push((config.hub_node(h), config.member_node(h, g, 0)));
                }
            }
            edges
        })
        .collect();
    HubGraph {
        num_nodes: config.num_nodes(),
        bootstrap_edges,
        churn_batches,
        mega_component_size: config.nodes_per_hub(),
    }
}

/// Company records reproducing [`hub_graph`]'s bootstrap shape through
/// name-token overlap:
///
/// * hub `h` is named with two hub-unique tokens,
/// * each group's representative carries its group tokens **plus** the hub
///   tokens (Jaccard ½ against both its group mates and the hub),
/// * the other group members carry only the group tokens.
///
/// Under a name-Jaccard matcher with threshold ≤ 0.5, the positive pairs
/// are exactly the group cliques plus one rep–hub bridge per group.
/// Record ids follow the [`hub_graph`] node layout; each group is one
/// entity with one record per source.
pub fn hub_companies(config: &HubConfig) -> Vec<CompanyRecord> {
    let mut records = Vec::with_capacity(config.num_nodes());
    for h in 0..config.hubs {
        let hub_tokens = format!("hx{h} hy{h}");
        records.push(
            CompanyRecord::new(
                RecordId(config.hub_node(h)),
                SourceId(0),
                hub_tokens.clone(),
            )
            .with_entity(EntityId((config.hubs * config.groups_per_hub + h) as u32)),
        );
        for g in 0..config.groups_per_hub {
            let group_tokens = format!("ga{h}q{g} gb{h}q{g}");
            let entity = EntityId((h * config.groups_per_hub + g) as u32);
            for j in 0..config.group_size {
                let name = if j == 0 {
                    format!("{group_tokens} {hub_tokens}")
                } else {
                    group_tokens.clone()
                };
                records.push(
                    CompanyRecord::new(
                        RecordId(config.member_node(h, g, j)),
                        SourceId((j + 1) as u16),
                        name,
                    )
                    .with_entity(entity),
                );
            }
        }
    }
    records.sort_by_key(|r| r.id.0);
    records
}

/// The records churn batch `batch` touches: the representatives of the
/// rotating group subset, re-submitted with a batch-stamped city. Names
/// are unchanged, so groups are semantically stable — but every update
/// dirties its record and forces the hub mega-component through a
/// re-clean, the worst-case serving pattern.
pub fn hub_churn_updates(config: &HubConfig, batch: usize) -> Vec<CompanyRecord> {
    let companies = hub_companies(config);
    let mut updates = Vec::with_capacity(config.hubs * config.churn_rewires);
    for h in 0..config.hubs {
        for r in 0..config.churn_rewires {
            let g = (batch * config.churn_rewires + r) % config.groups_per_hub;
            let mut record = companies[config.member_node(h, g, 0) as usize].clone();
            record.city = format!("batch{batch}");
            updates.push(record);
        }
    }
    updates
}

/// One steady-churn batch at the graph level: edges to add and edges to
/// retract before the next re-clean.
///
/// `remove` retracts *interior* clique edges — edges that are not bridges
/// when removed, but whose removal leaves another surviving clique edge as
/// a newly-created bridge (delete-driven bridge creation). `add` restores
/// interior edges retracted by an earlier batch once their group rotates
/// out, so the schedule is stable over an arbitrarily long horizon. The
/// rotation's hub bridges are *not* listed here: every steady batch re-adds
/// all of [`HubConfig::hub_bridges`] (the previous cleanup cut them all),
/// mirroring how the engine's merge re-welds a touched component from raw
/// predictions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SteadyBatch {
    /// Interior clique edges restored this batch.
    pub add: Vec<(u32, u32)>,
    /// Interior clique edges retracted this batch.
    pub remove: Vec<(u32, u32)>,
}

/// A long steady-state churn schedule: each batch rotates
/// `churn_rewires` groups per hub, retracting two interior edges of each
/// rotated group — `(m1,m2)` and `(m2,m3)` of its clique — so the
/// surviving `(m0,m2)` edge becomes a bridge created *by deletion*, and
/// restoring the retractions of previously-rotated groups. Requires
/// `group_size >= 4`; smaller groups get no interior churn (the schedule
/// is then hub-bridge-only).
pub fn hub_steady_schedule(config: &HubConfig, batches: usize) -> Vec<SteadyBatch> {
    let mut schedule = Vec::with_capacity(batches);
    // Groups whose interior edges (m1,m2),(m2,m3) are currently retracted.
    let mut degraded: Vec<(usize, usize)> = Vec::new();
    let interior = |config: &HubConfig, h: usize, g: usize| {
        [
            (config.member_node(h, g, 1), config.member_node(h, g, 2)),
            (config.member_node(h, g, 2), config.member_node(h, g, 3)),
        ]
    };
    for b in 0..batches {
        let mut rotation: Vec<(usize, usize)> = Vec::new();
        for h in 0..config.hubs {
            for r in 0..config.churn_rewires {
                let g = (b * config.churn_rewires + r) % config.groups_per_hub;
                if !rotation.contains(&(h, g)) {
                    rotation.push((h, g));
                }
            }
        }
        let mut batch = SteadyBatch::default();
        // Restore groups that have rotated out of the churn window.
        degraded.retain(|&(h, g)| {
            if rotation.contains(&(h, g)) {
                return true;
            }
            batch.add.extend(interior(config, h, g));
            false
        });
        if config.group_size >= 4 {
            for &(h, g) in &rotation {
                if !degraded.contains(&(h, g)) {
                    batch.remove.extend(interior(config, h, g));
                    degraded.push((h, g));
                }
            }
        }
        schedule.push(batch);
    }
    schedule
}

/// The record-level twin of interior retraction: updates that *shrink* a
/// group's positive pairs through the real matching pipeline.
///
/// For each rotated group, members 1 and 2 are re-submitted with degraded
/// names — member 1 keeps one group token and one hub token (`ga… hx…`),
/// member 2 the other pair (`gb… hy…`). Under the plain encoder's
/// value-token Jaccard, member 1 then scores ½ against the representative
/// (`{ga,hx}` of its 4 tokens) but only ⅓ against its mates and the hub —
/// so with a threshold in `(⅓, ½]` the group's clique collapses to a star
/// around the representative: the clique edges `(m1,m2)`, `(m1,m3)`,
/// `(m2,m3)` are retracted with **no new edge inserted**, leaving
/// `(m0,m1)` and `(m0,m2)` as delete-created bridges. The batch also
/// restores the original names of groups rotated in the previous batch,
/// so a replay alternates degrade/restore exactly like
/// [`hub_steady_schedule`]. Requires `group_size >= 4` for the math
/// above; panics otherwise.
pub fn hub_interior_churn_updates(config: &HubConfig, batch: usize) -> Vec<CompanyRecord> {
    assert!(
        config.group_size >= 4,
        "interior churn needs group_size >= 4, got {}",
        config.group_size
    );
    let companies = hub_companies(config);
    let rotation = |batch: usize| {
        let mut groups: Vec<(usize, usize)> = Vec::new();
        for h in 0..config.hubs {
            for r in 0..config.churn_rewires {
                let g = (batch * config.churn_rewires + r) % config.groups_per_hub;
                if !groups.contains(&(h, g)) {
                    groups.push((h, g));
                }
            }
        }
        groups
    };
    let current = rotation(batch);
    let mut updates = Vec::new();
    // Restore the previous batch's groups first (degrades below win for
    // groups present in both rotations). Only names change — a stamped
    // city would leak into the encoded token sets and shift every
    // Jaccard this function's math depends on.
    if batch > 0 {
        for (h, g) in rotation(batch - 1) {
            if current.contains(&(h, g)) {
                continue;
            }
            for j in [1, 2] {
                updates.push(companies[config.member_node(h, g, j) as usize].clone());
            }
        }
    }
    for &(h, g) in &current {
        let mut m1 = companies[config.member_node(h, g, 1) as usize].clone();
        m1.name = format!("ga{h}q{g} hx{h}");
        let mut m2 = companies[config.member_node(h, g, 2) as usize].clone();
        m2.name = format!("gb{h}q{g} hy{h}");
        updates.push(m1);
        updates.push(m2);
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_graph::{connected_components, Graph};

    fn small() -> HubConfig {
        HubConfig {
            hubs: 2,
            groups_per_hub: 5,
            group_size: 3,
            churn_batches: 3,
            churn_rewires: 2,
        }
    }

    #[test]
    fn bootstrap_forms_one_mega_component_per_hub() {
        let config = small();
        let hub = hub_graph(&config);
        let mut graph = Graph::with_nodes(hub.num_nodes);
        for &(a, b) in &hub.bootstrap_edges {
            graph.add_edge(a, b);
        }
        let components = connected_components(&graph);
        assert_eq!(components.len(), config.hubs);
        assert!(components
            .iter()
            .all(|c| c.len() == hub.mega_component_size));
    }

    #[test]
    fn churn_batches_rotate_through_groups() {
        let config = small();
        let hub = hub_graph(&config);
        assert_eq!(hub.churn_batches.len(), config.churn_batches);
        for batch in &hub.churn_batches {
            assert_eq!(batch.len(), config.hubs * config.churn_rewires);
            // Every churn edge is a hub bridge from the bootstrap set.
            for edge in batch {
                assert!(hub.bootstrap_edges.contains(edge));
            }
        }
        // Consecutive batches touch different groups (rotation).
        assert_ne!(hub.churn_batches[0], hub.churn_batches[1]);
    }

    #[test]
    fn companies_follow_the_node_layout() {
        let config = small();
        let records = hub_companies(&config);
        assert_eq!(records.len(), config.num_nodes());
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.id.0 as usize, i, "dense id layout");
        }
        // Hub 0 and a rep share the hub tokens; a mate does not.
        let hub = &records[0];
        let rep = &records[1];
        let mate = &records[2];
        assert!(rep.name.contains(&hub.name));
        assert!(!mate.name.contains("hx0"));
        // One record per source inside a group.
        assert_ne!(rep.source, mate.source);
    }

    #[test]
    fn churn_updates_keep_names_stable() {
        let config = small();
        let records = hub_companies(&config);
        let updates = hub_churn_updates(&config, 1);
        assert_eq!(updates.len(), config.hubs * config.churn_rewires);
        for update in &updates {
            let original = &records[update.id.0 as usize];
            assert_eq!(update.name, original.name);
            assert_ne!(update.city, original.city);
        }
    }

    fn small4() -> HubConfig {
        HubConfig {
            group_size: 4,
            ..small()
        }
    }

    #[test]
    fn steady_schedule_adds_and_removes_stay_consistent() {
        let config = small4();
        let schedule = hub_steady_schedule(&config, 4 * config.churn_batches);
        // Replay the schedule against a live edge set: every remove must hit
        // a present edge, every add (restore) an absent one.
        let hub = hub_graph(&config);
        let mut graph = Graph::with_nodes(hub.num_nodes);
        for &(a, b) in &hub.bootstrap_edges {
            graph.add_edge(a, b);
        }
        let mut saw_remove = false;
        let mut saw_restore = false;
        for batch in &schedule {
            for &(a, b) in &batch.add {
                assert!(graph.add_edge(a, b), "restore of a present edge ({a},{b})");
                saw_restore = true;
            }
            for &(a, b) in &batch.remove {
                assert!(
                    graph.remove_edge(a, b),
                    "retract of an absent edge ({a},{b})"
                );
                saw_remove = true;
            }
        }
        assert!(saw_remove && saw_restore);
        // Interior retraction creates a bridge: after the first batch, the
        // rotated group's clique is a star minus one chord.
        let first = &schedule[0];
        assert_eq!(
            first.remove[..2],
            [
                (config.member_node(0, 0, 1), config.member_node(0, 0, 2)),
                (config.member_node(0, 0, 2), config.member_node(0, 0, 3)),
            ]
        );
        assert!(first.add.is_empty(), "nothing to restore before batch 0");
    }

    #[test]
    fn steady_schedule_skips_interior_churn_for_tiny_groups() {
        let config = small(); // group_size 3 < 4
        let schedule = hub_steady_schedule(&config, 6);
        assert!(schedule
            .iter()
            .all(|b| b.remove.is_empty() && b.add.is_empty()));
    }

    #[test]
    fn interior_churn_degrades_then_restores_names() {
        let config = small4();
        let companies = hub_companies(&config);
        let degrade = hub_interior_churn_updates(&config, 0);
        // Batch 0: only degrades, two records per rotated group.
        assert!(degrade.len() >= 2 * config.hubs);
        for update in &degrade {
            let original = &companies[update.id.0 as usize];
            assert_ne!(update.name, original.name);
            assert_eq!(update.name.split_whitespace().count(), 2);
            assert_eq!(update.city, original.city, "only names may change");
        }
        // A later batch restores the previous rotation's original names.
        let next = hub_interior_churn_updates(&config, 1);
        let restored: Vec<_> = next
            .iter()
            .filter(|u| u.name == companies[u.id.0 as usize].name)
            .collect();
        assert!(!restored.is_empty());
        assert!(restored.len() < next.len(), "batch 1 must also degrade");
    }

    #[test]
    fn scaled_keeps_a_mega_component() {
        let ci = HubConfig::scaled(0.01);
        assert!(ci.groups_per_hub >= 12);
        assert!(ci.nodes_per_hub() > 50);
        let full = HubConfig::full();
        assert_eq!(full.nodes_per_hub(), 20_001);
    }
}
