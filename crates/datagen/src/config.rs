//! Generation parameters.
//!
//! The paper states the benchmark is "fully parameterized": dataset size and
//! the proportion of record groups receiving each data artifact are knobs
//! (Section 3.2). `GenerationConfig` is that parameterization; the presets
//! reproduce the paper's two calibrations (synthetic benchmark, Table 1's
//! synthetic column; and the real labeled subset, Table 1/2's real column).

use gralmatch_util::{Error, Result};

/// Per-artifact application rates (probability that a record group receives
/// the artifact; artifacts compose — a group can receive several).
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactRates {
    /// Swap a record's name for its acronym (companies).
    pub acronym_name: f64,
    /// Splice a corporate term (Inc./Ltd/…) into mentions of the name.
    pub insert_corporate_term: f64,
    /// Paraphrase the short description (groups that have one).
    pub paraphrase: f64,
    /// Probability a group is the *acquiree* of a simulated acquisition
    /// (records of both groups become one ground-truth entity).
    pub acquisition: f64,
    /// Probability a group takes part in a simulated merger (identifier
    /// overwrites without ground-truth merging — false ID-overlap bait).
    pub merger: f64,
    /// Mint extra identifiers for a security and attach them to several of
    /// its records (securities).
    pub multiple_ids: f64,
    /// Wipe all identifier overlaps within a security group (securities).
    pub no_id_overlaps: f64,
    /// Introduce a character typo into one record's name.
    pub typo_name: f64,
    /// Blank one non-name attribute in some records.
    pub drop_attribute: f64,
    /// Reorder the words of a multi-word name in one record.
    pub swap_name_order: f64,
}

impl ArtifactRates {
    /// Rates calibrated for the synthetic benchmark (challenging mix).
    pub fn synthetic() -> Self {
        ArtifactRates {
            acronym_name: 0.05,
            insert_corporate_term: 0.35,
            paraphrase: 0.50,
            acquisition: 0.02,
            merger: 0.02,
            multiple_ids: 0.05,
            no_id_overlaps: 0.03,
            typo_name: 0.08,
            drop_attribute: 0.15,
            swap_name_order: 0.05,
        }
    }

    /// Rates calibrated for the manually labeled real subset: mostly clean
    /// ID-matchable groups with a very low share of edge cases
    /// (Section 5.1.1: 63.5k ID-matched groups + 1.5k edge cases ≈ 2.3 %).
    pub fn real_subset() -> Self {
        ArtifactRates {
            acronym_name: 0.01,
            insert_corporate_term: 0.25,
            paraphrase: 0.15,
            acquisition: 0.006,
            merger: 0.006,
            multiple_ids: 0.006,
            no_id_overlaps: 0.005,
            typo_name: 0.02,
            drop_attribute: 0.08,
            swap_name_order: 0.01,
        }
    }

    fn all(&self) -> [f64; 10] {
        [
            self.acronym_name,
            self.insert_corporate_term,
            self.paraphrase,
            self.acquisition,
            self.merger,
            self.multiple_ids,
            self.no_id_overlaps,
            self.typo_name,
            self.drop_attribute,
            self.swap_name_order,
        ]
    }
}

/// Securities-side generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityConfig {
    /// Probability a company issues securities beyond its primary equity
    /// (the `MultipleSecurities` artifact).
    pub extra_security_rate: f64,
    /// Maximum number of extra securities.
    pub max_extra: usize,
    /// Probability a security record exists in a source where its issuer's
    /// company record exists.
    pub presence: f64,
    /// Probability a security record loses *all* its identifier codes
    /// (missing data — such records match only via text/issuer).
    pub missing_ids: f64,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        SecurityConfig {
            extra_security_rate: 0.25,
            max_extra: 2,
            presence: 0.85,
            missing_ids: 0.05,
        }
    }
}

/// Full generation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationConfig {
    /// Master RNG seed; every other stream derives from it.
    pub seed: u64,
    /// Number of company record groups (entities) to generate.
    pub num_entities: usize,
    /// Number of data sources.
    pub num_sources: u16,
    /// Probability a company record exists in each source.
    pub presence: f64,
    /// Fraction of seed companies with a short description.
    pub description_rate: f64,
    /// Probability a company record carries an LEI.
    pub lei_rate: f64,
    /// Artifact application rates.
    pub artifacts: ArtifactRates,
    /// Securities-side parameters.
    pub security: SecurityConfig,
}

impl GenerationConfig {
    /// The paper's synthetic benchmark calibration (Table 1 synthetic
    /// column: 5 sources, 200K entities, 868K company records ⇒ presence
    /// ≈ 0.868, 32 % descriptions).
    pub fn synthetic_full() -> Self {
        GenerationConfig {
            seed: DEFAULT_SEED,
            num_entities: 200_000,
            num_sources: 5,
            presence: 0.868,
            description_rate: 0.32,
            lei_rate: 0.6,
            artifacts: ArtifactRates::synthetic(),
            security: SecurityConfig::default(),
        }
    }

    /// The synthetic benchmark scaled by `factor` (0 < factor <= 1): same
    /// shape, fewer entities. `factor = 1.0` is the paper-size dataset.
    pub fn synthetic_scaled(factor: f64) -> Self {
        let mut config = Self::synthetic_full();
        config.num_entities = ((config.num_entities as f64 * factor).round() as usize).max(10);
        config
    }

    /// The real labeled subset simulator (Table 2 real rows: 8 sources,
    /// 6.3K company records, 12.8K security records, dominated by clean
    /// ID-matchable groups).
    pub fn real_simulated() -> Self {
        GenerationConfig {
            seed: DEFAULT_SEED ^ 0x4ea1,
            num_entities: 7_400,
            num_sources: 8,
            presence: 0.525,
            description_rate: 0.25,
            lei_rate: 0.75,
            artifacts: ArtifactRates::real_subset(),
            security: SecurityConfig {
                extra_security_rate: 0.7,
                max_extra: 2,
                presence: 0.9,
                missing_ids: 0.03,
            },
        }
    }

    /// Validate all probabilities and sizes.
    pub fn validate(&self) -> Result<()> {
        let probs = [
            ("presence", self.presence),
            ("description_rate", self.description_rate),
            ("lei_rate", self.lei_rate),
            (
                "security.extra_security_rate",
                self.security.extra_security_rate,
            ),
            ("security.presence", self.security.presence),
            ("security.missing_ids", self.security.missing_ids),
        ];
        for (what, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(Error::InvalidConfig(format!("{what} = {p} not in [0,1]")));
            }
        }
        for (i, p) in self.artifacts.all().iter().enumerate() {
            if !(0.0..=1.0).contains(p) {
                return Err(Error::InvalidConfig(format!(
                    "artifact rate #{i} = {p} not in [0,1]"
                )));
            }
        }
        if self.num_entities == 0 {
            return Err(Error::InvalidConfig("num_entities must be > 0".into()));
        }
        if self.num_sources == 0 {
            return Err(Error::InvalidConfig("num_sources must be > 0".into()));
        }
        Ok(())
    }
}

/// Default experiment seed; every preset derives from it so all tables are
/// reproducible out of the box.
pub const DEFAULT_SEED: u64 = 0x67a1_4a7c_4d06_15e1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        GenerationConfig::synthetic_full().validate().unwrap();
        GenerationConfig::real_simulated().validate().unwrap();
        GenerationConfig::synthetic_scaled(0.05).validate().unwrap();
    }

    #[test]
    fn scaling_shrinks_entities() {
        let full = GenerationConfig::synthetic_full();
        let scaled = GenerationConfig::synthetic_scaled(0.05);
        assert_eq!(scaled.num_entities, 10_000);
        assert_eq!(scaled.num_sources, full.num_sources);
    }

    #[test]
    fn invalid_probability_rejected() {
        let mut config = GenerationConfig::synthetic_full();
        config.presence = 1.5;
        assert!(config.validate().is_err());
    }

    #[test]
    fn zero_entities_rejected() {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn real_sim_has_more_sources_fewer_edge_cases() {
        let real = GenerationConfig::real_simulated();
        let synth = GenerationConfig::synthetic_full();
        assert!(real.num_sources > synth.num_sources);
        assert!(real.artifacts.acquisition < synth.artifacts.acquisition);
    }
}
