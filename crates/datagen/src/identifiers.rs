//! Synthetic identifier-code generators.
//!
//! Formats follow the real standards closely enough that the codes *look*
//! right (prefix country codes, digit/letter composition, lengths) while
//! uniqueness is guaranteed by a per-generation counter mixed into the
//! code body — two different securities can never collide unless an
//! artifact deliberately copies codes between records (which is the point
//! of the data-drift simulation).

use gralmatch_records::{IdCode, IdKind};
use gralmatch_util::SplitRng;

const COUNTRIES: &[&str] = &["US", "CH", "GB", "DE", "FR", "JP", "CA", "AU", "NL", "SE"];
const ALPHANUM: &[u8] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";

fn base36(mut value: u64, width: usize) -> String {
    let mut buf = vec![b'0'; width];
    for slot in buf.iter_mut().rev() {
        *slot = ALPHANUM[(value % 36) as usize];
        value /= 36;
    }
    String::from_utf8(buf).expect("ascii")
}

/// Stateful unique-code factory for one generation run.
#[derive(Debug)]
pub struct IdFactory {
    counter: u64,
    rng: SplitRng,
}

impl IdFactory {
    /// Create a factory with its own RNG stream.
    pub fn new(rng: SplitRng) -> Self {
        IdFactory { counter: 0, rng }
    }

    fn next_serial(&mut self) -> u64 {
        self.counter += 1;
        self.counter
    }

    /// ISIN: 2-letter country + 9 alphanumerics + check digit.
    pub fn isin(&mut self) -> IdCode {
        let country = self.rng.pick(COUNTRIES);
        let body = base36(self.next_serial(), 9);
        let check = (self.rng.next_u64() % 10).to_string();
        IdCode::new(IdKind::Isin, format!("{country}{body}{check}"))
    }

    /// CUSIP: 9 alphanumerics.
    pub fn cusip(&mut self) -> IdCode {
        IdCode::new(IdKind::Cusip, base36(self.next_serial() | (1 << 40), 9))
    }

    /// VALOR: numeric, 6–9 digits.
    pub fn valor(&mut self) -> IdCode {
        IdCode::new(IdKind::Valor, format!("{}", 100_000 + self.next_serial()))
    }

    /// SEDOL: 7 alphanumerics starting with a letter.
    pub fn sedol(&mut self) -> IdCode {
        let first = ALPHANUM[10 + (self.rng.next_u64() % 26) as usize] as char;
        IdCode::new(
            IdKind::Sedol,
            format!("{first}{}", base36(self.next_serial(), 6)),
        )
    }

    /// LEI: 4-digit prefix + "00" + 12 alphanumerics + 2 check digits.
    pub fn lei(&mut self) -> IdCode {
        let prefix = 1000 + (self.rng.next_u64() % 9000);
        let body = base36(self.next_serial(), 12);
        let check = 10 + (self.rng.next_u64() % 90);
        IdCode::new(IdKind::Lei, format!("{prefix}00{body}{check}"))
    }

    /// The standard code bundle for a new security entity: always an ISIN,
    /// usually a CUSIP, sometimes a VALOR, and one SEDOL per exchange
    /// listing (0–3) — matching how real vendor feeds mix identifier
    /// standards. Bundles of 4–6 codes are common, which under wordpiece
    /// tokenization is what blows DITTO's 128-token budget (Section 6.1).
    pub fn security_bundle(&mut self) -> Vec<IdCode> {
        let mut codes = vec![self.isin()];
        if self.rng.chance(0.85) {
            codes.push(self.cusip());
        }
        if self.rng.chance(0.5) {
            codes.push(self.valor());
        }
        let listings = self.rng.next_below(4); // 0..=3 exchange listings
        for _ in 0..listings {
            codes.push(self.sedol());
        }
        codes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factory() -> IdFactory {
        IdFactory::new(SplitRng::new(7))
    }

    #[test]
    fn isin_format() {
        let mut f = factory();
        let code = f.isin();
        assert_eq!(code.kind, IdKind::Isin);
        assert_eq!(code.value.len(), 12);
        assert!(code.value[..2].chars().all(|c| c.is_ascii_uppercase()));
    }

    #[test]
    fn cusip_format() {
        let code = factory().cusip();
        assert_eq!(code.value.len(), 9);
    }

    #[test]
    fn sedol_format() {
        let code = factory().sedol();
        assert_eq!(code.value.len(), 7);
        assert!(code.value.chars().next().unwrap().is_ascii_alphabetic());
    }

    #[test]
    fn lei_format() {
        let code = factory().lei();
        assert_eq!(code.value.len(), 20);
    }

    #[test]
    fn codes_are_unique() {
        let mut f = factory();
        let mut seen = gralmatch_util::FxHashSet::default();
        for _ in 0..10_000 {
            assert!(seen.insert(f.isin().value), "ISIN collision");
            assert!(seen.insert(f.cusip().value), "CUSIP collision");
        }
    }

    #[test]
    fn bundle_always_has_isin() {
        let mut f = factory();
        for _ in 0..100 {
            let bundle = f.security_bundle();
            assert!(bundle.iter().any(|c| c.kind == IdKind::Isin));
            assert!(!bundle.is_empty() && bundle.len() <= 6);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<String> = {
            let mut f = IdFactory::new(SplitRng::new(3));
            (0..10).map(|_| f.isin().value).collect()
        };
        let b: Vec<String> = {
            let mut f = IdFactory::new(SplitRng::new(3));
            (0..10).map(|_| f.isin().value).collect()
        };
        assert_eq!(a, b);
    }
}
