//! Embedded word pools for the seed generator.
//!
//! Stands in for the Crunchbase export (see DESIGN.md substitution table).
//! The pools are engineered to produce the *collision families* the paper
//! motivates: many roots share long prefixes ("crowd-", "cloud-", "data-")
//! and many suffixes share long character runs ("-strike", "-street",
//! "-stream"), so distinct entities end up with names like
//! "Crowdstrike" vs "Crowdstreet" — exactly the false-positive bait of
//! Figure 2.

/// Name roots. Deliberately includes families with shared prefixes.
pub const ROOTS: &[&str] = &[
    "crowd", "cloud", "clear", "core", "corte", "data", "data", "delta", "digi", "dyna", "eco",
    "edge", "ever", "evo", "fin", "first", "flex", "flux", "fort", "fusion", "gen", "geo", "giga",
    "global", "gold", "grand", "green", "grid", "ground", "grow", "health", "helio", "hexa",
    "high", "hyper", "icon", "infra", "inno", "inter", "iron", "kin", "lake", "land", "laser",
    "light", "lumen", "luna", "macro", "magna", "mark", "med", "mega", "meta", "micro", "mind",
    "mono", "moon", "multi", "nano", "neo", "net", "nex", "north", "nova", "omni", "open", "opti",
    "orbit", "pay", "peak", "penta", "petro", "pharma", "photo", "pixel", "poly", "power", "prime",
    "pro", "pulse", "quant", "quantum", "rapid", "red", "ridge", "river", "rock", "royal", "safe",
    "sage", "sea", "shore", "silver", "sky", "smart", "solar", "south", "spark", "spring", "star",
    "steel", "stone", "storm", "stream", "sun", "swift", "terra", "tidal", "top", "trans", "tri",
    "true", "ultra", "uni", "urban", "vast", "vector", "velo", "verde", "vertex", "vital", "vivid",
    "volt", "wave", "west", "wind", "wood", "zen", "zenith", "zero",
];

/// Compound suffixes. Families share character runs on purpose
/// ("strike/street/stream", "logic/logix", "soft/sort").
pub const SUFFIXES: &[&str] = &[
    "strike", "street", "stream", "strand", "bank", "base", "beam", "bit", "box", "bridge", "byte",
    "cast", "chain", "chart", "check", "craft", "cube", "desk", "drive", "dyne", "field", "flow",
    "forge", "form", "gate", "gear", "grid", "guard", "hub", "jet", "lab", "labs", "lane", "leaf",
    "level", "lift", "line", "link", "lock", "logic", "logix", "loop", "mark", "mesh", "mill",
    "mind", "nest", "node", "path", "pay", "point", "port", "press", "prise", "pulse", "rise",
    "scan", "scape", "scale", "sense", "shift", "soft", "sort", "space", "span", "spark", "sphere",
    "spot", "stack", "stock", "switch", "sync", "tech", "trace", "track", "trade", "vault", "view",
    "ware", "watch", "wave", "way", "web", "wise", "works", "yard",
];

/// Standalone trailing industry words for two-word names.
pub const INDUSTRY_WORDS: &[&str] = &[
    "Analytics",
    "Capital",
    "Dynamics",
    "Energy",
    "Foods",
    "Industries",
    "Insurance",
    "Logistics",
    "Media",
    "Mining",
    "Mobility",
    "Motors",
    "Networks",
    "Partners",
    "Pharmaceuticals",
    "Resources",
    "Robotics",
    "Semiconductors",
    "Services",
    "Shipping",
    "Software",
    "Solutions",
    "Systems",
    "Technologies",
    "Telecom",
    "Therapeutics",
    "Utilities",
    "Ventures",
];

/// Corporate terms the `InsertCorporateTerm` artifact splices into names.
pub const CORPORATE_TERMS: &[&str] = &[
    "Inc.",
    "Incorporated",
    "Corp.",
    "Corporation",
    "Ltd.",
    "Limited",
    "LLC",
    "PLC",
    "AG",
    "SA",
    "Group",
    "Holdings",
    "Co.",
    "Plt.",
];

/// Geographic adjectives used as optional name prefixes.
pub const GEO_ADJECTIVES: &[&str] = &[
    "American",
    "Atlantic",
    "Continental",
    "Eastern",
    "European",
    "Federal",
    "National",
    "Nordic",
    "Northern",
    "Pacific",
    "Southern",
    "Swiss",
    "United",
    "Western",
];

/// `(city, region, country_code)` gazetteer.
pub const LOCATIONS: &[(&str, &str, &str)] = &[
    ("New York", "New York", "USA"),
    ("San Francisco", "California", "USA"),
    ("Austin", "Texas", "USA"),
    ("Boston", "Massachusetts", "USA"),
    ("Seattle", "Washington", "USA"),
    ("Chicago", "Illinois", "USA"),
    ("Denver", "Colorado", "USA"),
    ("Atlanta", "Georgia", "USA"),
    ("Miami", "Florida", "USA"),
    ("Los Angeles", "California", "USA"),
    ("London", "England", "GBR"),
    ("Manchester", "England", "GBR"),
    ("Edinburgh", "Scotland", "GBR"),
    ("Zurich", "Zurich", "CHE"),
    ("Geneva", "Geneva", "CHE"),
    ("Basel", "Basel-Stadt", "CHE"),
    ("Berlin", "Berlin", "DEU"),
    ("Munich", "Bavaria", "DEU"),
    ("Frankfurt", "Hesse", "DEU"),
    ("Hamburg", "Hamburg", "DEU"),
    ("Paris", "Ile-de-France", "FRA"),
    ("Lyon", "Auvergne-Rhone-Alpes", "FRA"),
    ("Amsterdam", "North Holland", "NLD"),
    ("Rotterdam", "South Holland", "NLD"),
    ("Stockholm", "Stockholm", "SWE"),
    ("Gothenburg", "Vastra Gotaland", "SWE"),
    ("Copenhagen", "Capital Region", "DNK"),
    ("Oslo", "Oslo", "NOR"),
    ("Helsinki", "Uusimaa", "FIN"),
    ("Dublin", "Leinster", "IRL"),
    ("Madrid", "Madrid", "ESP"),
    ("Barcelona", "Catalonia", "ESP"),
    ("Milan", "Lombardy", "ITA"),
    ("Rome", "Lazio", "ITA"),
    ("Vienna", "Vienna", "AUT"),
    ("Brussels", "Brussels", "BEL"),
    ("Lisbon", "Lisbon", "PRT"),
    ("Warsaw", "Masovia", "POL"),
    ("Prague", "Prague", "CZE"),
    ("Tokyo", "Kanto", "JPN"),
    ("Osaka", "Kansai", "JPN"),
    ("Singapore", "Singapore", "SGP"),
    ("Hong Kong", "Hong Kong", "HKG"),
    ("Sydney", "New South Wales", "AUS"),
    ("Melbourne", "Victoria", "AUS"),
    ("Toronto", "Ontario", "CAN"),
    ("Vancouver", "British Columbia", "CAN"),
    ("Montreal", "Quebec", "CAN"),
    ("Sao Paulo", "Sao Paulo", "BRA"),
    ("Mexico City", "CDMX", "MEX"),
    ("Mumbai", "Maharashtra", "IND"),
    ("Bangalore", "Karnataka", "IND"),
    ("Seoul", "Seoul", "KOR"),
    ("Tel Aviv", "Tel Aviv", "ISR"),
    ("Dubai", "Dubai", "ARE"),
];

/// Business domains for description templates.
pub const DOMAINS: &[&str] = &[
    "cloud security",
    "payment processing",
    "supply chain visibility",
    "renewable energy",
    "precision agriculture",
    "clinical diagnostics",
    "fleet telematics",
    "digital banking",
    "industrial automation",
    "real estate analytics",
    "talent management",
    "data privacy",
    "edge computing",
    "drug discovery",
    "freight brokerage",
    "customer engagement",
    "fraud detection",
    "asset tokenization",
    "battery storage",
    "satellite imaging",
    "cyber threat intelligence",
    "insurance underwriting",
    "retail personalization",
    "wealth management",
    "smart grid optimization",
    "genomic sequencing",
];

/// Customer segments for description templates.
pub const AUDIENCES: &[&str] = &[
    "enterprises",
    "small businesses",
    "financial institutions",
    "healthcare providers",
    "retailers",
    "manufacturers",
    "logistics operators",
    "government agencies",
    "developers",
    "consumers",
    "utilities",
    "asset managers",
    "insurers",
    "carriers",
];

/// Verb phrases for description templates.
pub const VALUE_VERBS: &[&str] = &[
    "streamlines",
    "automates",
    "secures",
    "accelerates",
    "simplifies",
    "optimizes",
    "modernizes",
    "de-risks",
    "unifies",
    "scales",
];

/// Security-name suffixes appended to issuer-derived names.
pub const SECURITY_NAME_FORMS: &[&str] = &[
    "Registered Shs",
    "Ordinary Shares",
    "Common Stock",
    "ORD",
    "Shs",
    "Registered Shares",
    "Class A",
    "Class B",
    "Bearer Shs",
    "Npv",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_non_trivial() {
        assert!(ROOTS.len() >= 100);
        assert!(SUFFIXES.len() >= 60);
        assert!(LOCATIONS.len() >= 50);
        assert!(DOMAINS.len() >= 20);
    }

    #[test]
    fn collision_families_present() {
        // The generator's raison d'être: confusable suffixes exist.
        assert!(SUFFIXES.contains(&"strike"));
        assert!(SUFFIXES.contains(&"street"));
        assert!(SUFFIXES.contains(&"stream"));
        assert!(ROOTS.contains(&"crowd"));
        assert!(ROOTS.contains(&"cloud"));
    }

    #[test]
    fn locations_have_all_parts() {
        for (city, region, country) in LOCATIONS {
            assert!(!city.is_empty() && !region.is_empty() && country.len() == 3);
        }
    }
}
