//! End-to-end synthetic benchmark generation (paper Section 3.2).
//!
//! Pipeline:
//! 1. **Seeds** — clean per-entity attributes (Crunchbase stand-in).
//! 2. **Assembly** — replicate each entity across a random subset of data
//!    sources with vendor-style naming variation; plan each company's
//!    securities and their identifier bundles.
//! 3. **Per-group artifacts** — the Section 3.2 pollution operators,
//!    applied in a random combination per group.
//! 4. **Cross-group data drift** — simulated acquisitions (ground-truth
//!    merges with partial attribute overwrites) and mergers (identifier
//!    contamination *without* a ground-truth merge).
//! 5. **Materialization** — shuffle, assign dense record ids, resolve
//!    issuer references, emit immutable datasets.
//!
//! Every step draws from seed-derived RNG streams, so a config generates an
//! identical dataset on every machine.

use crate::artifacts::{self, ArtifactKind};
use crate::config::GenerationConfig;
use crate::draft::{CompanyDraft, GroupDrafts, SecurityDraft};
use crate::identifiers::IdFactory;
use crate::seed::{generate_seeds, SeedCompany};
use crate::wordlists::SECURITY_NAME_FORMS;
use gralmatch_graph::UnionFind;
use gralmatch_records::{
    CompanyRecord, Dataset, EntityId, IdCode, RecordId, SecurityRecord, SecurityType, SourceId,
};
use gralmatch_util::{FxHashMap, Result, SplitRng};

/// A generated benchmark: companies + securities with ground-truth labels,
/// plus an audit log of artifact applications.
#[derive(Debug)]
pub struct FinancialDataset {
    /// Company records (dense ids).
    pub companies: Dataset<CompanyRecord>,
    /// Security records (dense ids).
    pub securities: Dataset<SecurityRecord>,
    /// How many groups received each artifact.
    pub artifact_counts: FxHashMap<ArtifactKind, usize>,
}

/// Generate a benchmark dataset from a configuration.
pub fn generate(config: &GenerationConfig) -> Result<FinancialDataset> {
    config.validate()?;
    let root = SplitRng::new(config.seed);
    let mut seed_rng = root.split("seeds");
    let plan_rng = root.split("plan");
    let mut artifact_rng = root.split("artifacts");
    let mut drift_rng = root.split("drift");
    let mut shuffle_rng = root.split("shuffle");
    let mut factory = IdFactory::new(root.split("identifiers"));

    let seeds = generate_seeds(config.num_entities, config.description_rate, &mut seed_rng);

    let mut builder = Builder::new(config);
    for (entity, seed) in seeds.iter().enumerate() {
        let mut rng = plan_rng.split_index(entity as u64);
        builder.assemble_group(entity as u32, seed, &mut factory, &mut rng);
    }

    builder.apply_group_artifacts(&mut factory, &mut artifact_rng);
    builder.apply_drift(&mut factory, &mut drift_rng);
    Ok(builder.materialize(&mut shuffle_rng))
}

struct Builder<'cfg> {
    config: &'cfg GenerationConfig,
    companies: Vec<CompanyDraft>,
    securities: Vec<SecurityDraft>,
    groups: Vec<GroupDrafts>,
    /// Per-security-entity company owner (group index), for drift pairing.
    next_security_entity: u32,
    uf_company: Vec<(u32, u32)>, // union edges; resolved at materialization
    uf_security: Vec<(u32, u32)>,
    artifact_counts: FxHashMap<ArtifactKind, usize>,
}

impl<'cfg> Builder<'cfg> {
    fn new(config: &'cfg GenerationConfig) -> Self {
        Builder {
            config,
            companies: Vec::new(),
            securities: Vec::new(),
            groups: Vec::with_capacity(config.num_entities),
            next_security_entity: 0,
            uf_company: Vec::new(),
            uf_security: Vec::new(),
            artifact_counts: FxHashMap::default(),
        }
    }

    fn log(&mut self, kind: ArtifactKind) {
        *self.artifact_counts.entry(kind).or_insert(0) += 1;
    }

    /// Vendor-style base name variation, independent of artifacts: real
    /// sources disagree on casing and abbreviation even for clean entities.
    fn vendor_name(seed_name: &str, rng: &mut SplitRng) -> String {
        match rng.next_below(12) {
            0 => seed_name.to_uppercase(),
            1 => seed_name.to_lowercase(),
            _ => seed_name.to_string(),
        }
    }

    fn security_name(issuer_name: &str, sec_type: SecurityType, rng: &mut SplitRng) -> String {
        // Vendors disagree wildly on security naming: some spell out the
        // issuer, some use ticker abbreviations, some only the share class
        // ("Registered Shs" — the generic names of paper Figure 2 that make
        // text alignment of drifted securities near-impossible).
        let head: String = match rng.next_below(10) {
            // Generic: no issuer reference at all.
            0..=1 => String::new(),
            // Ticker-ish: first 4 alphanumerics, uppercased.
            2..=3 => issuer_name
                .chars()
                .filter(|c| c.is_alphanumeric())
                .take(4)
                .flat_map(|c| c.to_uppercase())
                .collect(),
            // Issuer's leading words.
            _ => issuer_name
                .split_whitespace()
                .take(2)
                .collect::<Vec<_>>()
                .join(" "),
        };
        let named = match sec_type {
            SecurityType::Bond => format!(
                "{head} {}.{}% Notes 20{}",
                2 + rng.next_below(6),
                rng.next_below(100),
                26 + rng.next_below(14)
            ),
            SecurityType::Right => format!("{head} Subscription Rights"),
            SecurityType::Unit => format!("{head} Units"),
            SecurityType::Adr => format!("{head} ADR"),
            SecurityType::Equity => format!("{head} {}", rng.pick(SECURITY_NAME_FORMS)),
        };
        named.trim().to_string()
    }

    /// Exchange-listings blob for one security record. Vendors export a
    /// venue mnemonic, trading currency, and lot data per listing; 1–4
    /// venues per record. The blob is long and mostly uninformative for
    /// matching — the token mass that makes encoder budgets bind.
    fn listings_blob(rng: &mut SplitRng) -> String {
        const VENUES: &[&str] = &[
            "XNYS", "XNAS", "XLON", "XETR", "XSWX", "XPAR", "XAMS", "XTKS", "XHKG", "XASX", "XTSE",
            "XSTO", "XMIL", "XMAD", "XBRU",
        ];
        const CURRENCIES: &[&str] = &["USD", "EUR", "GBP", "CHF", "JPY", "CAD", "AUD", "SEK"];
        let venues = 2 + rng.next_below(4);
        let mut parts = Vec::with_capacity(venues);
        for _ in 0..venues {
            parts.push(format!(
                "{} {} seg {}{:03} lot {} tick {}.{:04}",
                rng.pick(VENUES),
                rng.pick(CURRENCIES),
                ["EQTY", "MAIN", "INTL", "SMLC"][rng.next_below(4)],
                rng.next_below(1000),
                [1, 10, 100][rng.next_below(3)],
                rng.next_below(2),
                rng.next_below(10_000),
            ));
        }
        parts.join(" | ")
    }

    /// Build the drafts of one company record group and its securities.
    fn assemble_group(
        &mut self,
        entity: u32,
        seed: &SeedCompany,
        factory: &mut IdFactory,
        rng: &mut SplitRng,
    ) {
        let config = self.config;
        // Which sources carry this company.
        let mut sources: Vec<u16> = (0..config.num_sources)
            .filter(|_| rng.chance(config.presence))
            .collect();
        if sources.is_empty() {
            sources.push(rng.next_below(config.num_sources as usize) as u16);
        }

        // Company-level identifier (LEI) shared by all records of the group.
        let lei: Option<IdCode> = rng.chance(config.lei_rate).then(|| factory.lei());

        // Plan securities: primary equity + optional extras.
        let mut security_plans: Vec<(SecurityType, Vec<IdCode>, u32)> = Vec::new();
        security_plans.push((
            SecurityType::Equity,
            factory.security_bundle(),
            self.next_security_entity,
        ));
        self.next_security_entity += 1;
        if rng.chance(config.security.extra_security_rate) {
            self.log(ArtifactKind::MultipleSecurities);
            let extras = rng.range_inclusive(1, config.security.max_extra.max(1));
            for _ in 0..extras {
                let sec_type = *rng.pick(&[
                    SecurityType::Bond,
                    SecurityType::Right,
                    SecurityType::Unit,
                    SecurityType::Adr,
                ]);
                security_plans.push((
                    sec_type,
                    factory.security_bundle(),
                    self.next_security_entity,
                ));
                self.next_security_entity += 1;
            }
        }

        let mut group = GroupDrafts::default();

        // One company draft per source.
        let mut company_idx_by_source: FxHashMap<u16, usize> = FxHashMap::default();
        for &src in &sources {
            let idx = self.companies.len();
            self.companies.push(CompanyDraft {
                entity,
                source: SourceId(src),
                name: Self::vendor_name(&seed.name, rng),
                city: seed.city.clone(),
                region: seed.region.clone(),
                country_code: seed.country_code.clone(),
                description: seed.description.clone(),
                id_codes: lei.iter().cloned().collect(),
                securities: Vec::new(),
            });
            company_idx_by_source.insert(src, idx);
            group.companies.push(idx);
        }

        // Security drafts: for each planned security, one record per source
        // where the company exists (with probability `security.presence`),
        // at least one record overall.
        for (sec_type, bundle, sec_entity) in &security_plans {
            let mut records = Vec::new();
            for &src in &sources {
                if !rng.chance(config.security.presence) {
                    continue;
                }
                records.push(src);
            }
            if records.is_empty() {
                records.push(*rng.pick(&sources));
            }
            let mut sec_group = Vec::with_capacity(records.len());
            for src in records {
                let issuer = company_idx_by_source[&src];
                let idx = self.securities.len();
                let codes = if rng.chance(config.security.missing_ids) {
                    Vec::new()
                } else {
                    bundle.clone()
                };
                self.securities.push(SecurityDraft {
                    entity: *sec_entity,
                    source: SourceId(src),
                    name: Self::security_name(&seed.name, *sec_type, rng),
                    security_type: *sec_type,
                    listings: Self::listings_blob(rng),
                    id_codes: codes,
                    issuer,
                });
                self.companies[issuer].securities.push(idx);
                sec_group.push(idx);
            }
            group.securities.push(sec_group);
        }

        self.groups.push(group);
    }

    /// Apply the per-group artifacts with the configured rates.
    fn apply_group_artifacts(&mut self, factory: &mut IdFactory, rng: &mut SplitRng) {
        let rates = self.config.artifacts.clone();
        for g in 0..self.groups.len() {
            let mut group_rng = rng.split_index(g as u64);
            // Taking the group by value view to satisfy the borrow checker:
            // artifacts mutate `companies`/`securities`, not `groups`.
            let group = self.groups[g].clone();
            if group_rng.chance(rates.acronym_name) {
                artifacts::acronym_name(&group, &mut self.companies, &mut group_rng);
                self.log(ArtifactKind::AcronymName);
            }
            if group_rng.chance(rates.insert_corporate_term) {
                artifacts::insert_corporate_term(&group, &mut self.companies, &mut group_rng);
                self.log(ArtifactKind::InsertCorporateTerm);
            }
            let has_description = group
                .companies
                .iter()
                .any(|&i| !self.companies[i].description.is_empty());
            if has_description && group_rng.chance(rates.paraphrase) {
                artifacts::paraphrase_attribute(&group, &mut self.companies, &mut group_rng);
                self.log(ArtifactKind::ParaphraseAttribute);
            }
            if group_rng.chance(rates.multiple_ids) {
                artifacts::multiple_ids(&group, &mut self.securities, factory, &mut group_rng);
                self.log(ArtifactKind::MultipleIds);
            }
            if group_rng.chance(rates.no_id_overlaps) {
                artifacts::no_id_overlaps(&group, &mut self.securities, factory, &mut group_rng);
                self.log(ArtifactKind::NoIdOverlaps);
            }
            if group_rng.chance(rates.typo_name) {
                artifacts::typo_name(&group, &mut self.companies, &mut group_rng);
                self.log(ArtifactKind::TypoName);
            }
            if group_rng.chance(rates.drop_attribute) {
                artifacts::drop_attribute(&group, &mut self.companies, &mut group_rng);
                self.log(ArtifactKind::DropAttribute);
            }
            if group_rng.chance(rates.swap_name_order) {
                artifacts::swap_name_order(&group, &mut self.companies, &mut group_rng);
                self.log(ArtifactKind::SwapNameOrder);
            }
        }
    }

    /// Cross-group data drift: acquisitions and mergers (Section 3.2/3.3).
    ///
    /// Pairs of groups are sampled disjointly. An acquisition merges the
    /// ground truth of both groups and overwrites the acquiree's attributes
    /// in the sources that "recorded the event"; a merger only contaminates
    /// identifiers, producing ID-overlap pairs that are **not** matches.
    fn apply_drift(&mut self, factory: &mut IdFactory, rng: &mut SplitRng) {
        let n = self.groups.len();
        let n_acq = ((n as f64) * self.config.artifacts.acquisition).round() as usize;
        let n_merge = ((n as f64) * self.config.artifacts.merger).round() as usize;
        let needed = (n_acq + n_merge) * 2;
        if needed == 0 || needed > n {
            return;
        }
        let chosen = rng.sample_indices(n, needed);
        let (acq_slice, merge_slice) = chosen.split_at(n_acq * 2);

        for pair in acq_slice.chunks_exact(2) {
            self.acquisition(pair[0], pair[1], rng);
            self.log(ArtifactKind::CreateCorporateAcquisition);
        }
        for pair in merge_slice.chunks_exact(2) {
            self.merger(pair[0], pair[1], factory, rng);
            self.log(ArtifactKind::CreateCorporateMerger);
        }
    }

    /// Group `a` acquires group `b`.
    fn acquisition(&mut self, a: usize, b: usize, rng: &mut SplitRng) {
        let group_a = self.groups[a].clone();
        let group_b = self.groups[b].clone();
        // Ground truth: one entity. (Resolved through a union-find at
        // materialization so chains of acquisitions compose.)
        let entity_a = self.companies[group_a.companies[0]].entity;
        let entity_b = self.companies[group_b.companies[0]].entity;
        self.uf_company.push((entity_a, entity_b));

        // Pair securities k-th to k-th: the acquiree's listings are
        // re-identified as the acquirer's securities by recording sources.
        for (secs_a, secs_b) in group_a.securities.iter().zip(&group_b.securities) {
            let ea = self.securities[secs_a[0]].entity;
            let eb = self.securities[secs_b[0]].entity;
            self.uf_security.push((ea, eb));
        }
        // Unpaired extra securities of b merge into a's primary security.
        if group_b.securities.len() > group_a.securities.len() {
            let ea = self.securities[group_a.securities[0][0]].entity;
            for secs_b in &group_b.securities[group_a.securities.len()..] {
                let eb = self.securities[secs_b[0]].entity;
                self.uf_security.push((ea, eb));
            }
        }

        // Attribute overwrites in sources that recorded the event.
        let a_name = self.companies[group_a.companies[0]].name.clone();
        let a_codes = self.companies[group_a.companies[0]].id_codes.clone();
        for &cb in &group_b.companies {
            if !rng.chance(0.5) {
                continue; // this source did not record the acquisition
            }
            self.companies[cb].name = a_name.clone();
            self.companies[cb].id_codes = a_codes.clone();
            if rng.chance(0.5) {
                let ca = group_a.companies[0];
                self.companies[cb].city = self.companies[ca].city.clone();
                self.companies[cb].region = self.companies[ca].region.clone();
                self.companies[cb].country_code = self.companies[ca].country_code.clone();
            }
            // The recording source also re-identifies b's securities in
            // this source with a's codes.
            for (k, secs_b) in group_b.securities.iter().enumerate() {
                let Some(secs_a) = group_a.securities.get(k.min(group_a.securities.len() - 1))
                else {
                    continue;
                };
                let donor_codes = self.securities[secs_a[0]].id_codes.clone();
                let src = self.companies[cb].source;
                for &sb in secs_b {
                    if self.securities[sb].source == src {
                        self.securities[sb].id_codes = donor_codes.clone();
                    }
                }
            }
        }
    }

    /// Groups `a` and `b` merge into a new venture: identifiers leak from
    /// `b` into some of `a`'s records, but the ground truth stays separate
    /// (Section 3.2: "We do not consider records involved in simulated
    /// mergers as matches").
    fn merger(&mut self, a: usize, b: usize, factory: &mut IdFactory, rng: &mut SplitRng) {
        let group_a = self.groups[a].clone();
        let group_b = self.groups[b].clone();
        for (secs_a, secs_b) in group_a.securities.iter().zip(&group_b.securities) {
            let donor = self.securities[secs_b[0]].id_codes.clone();
            if donor.is_empty() {
                continue;
            }
            for &sa in secs_a {
                if rng.chance(0.5) {
                    // Overwrite roughly half the codes with the donor's.
                    let keep = self.securities[sa].id_codes.len() / 2;
                    self.securities[sa].id_codes.truncate(keep);
                    self.securities[sa].id_codes.extend(donor.iter().cloned());
                }
            }
        }
        // The merged venture may also appear as fresh identifiers on both
        // sides (new listing for the combined entity).
        if rng.chance(0.3) {
            let fresh = factory.security_bundle();
            for group in [&group_a, &group_b] {
                if let Some(secs) = group.securities.first() {
                    for &s in secs {
                        if rng.chance(0.3) {
                            self.securities[s].id_codes.extend(fresh.iter().cloned());
                        }
                    }
                }
            }
        }
    }

    /// Shuffle, assign dense ids, resolve references, emit datasets.
    fn materialize(self, rng: &mut SplitRng) -> FinancialDataset {
        let Builder {
            companies: company_drafts,
            securities: security_drafts,
            uf_company,
            uf_security,
            artifact_counts,
            next_security_entity,
            config,
            ..
        } = self;

        // Resolve ground-truth labels through union-find (acquisitions).
        let mut ufc = UnionFind::new(config.num_entities);
        for (a, b) in uf_company {
            ufc.union(a, b);
        }
        let mut ufs = UnionFind::new(next_security_entity as usize);
        for (a, b) in uf_security {
            ufs.union(a, b);
        }

        // Shuffled dense ids.
        let mut company_order: Vec<usize> = (0..company_drafts.len()).collect();
        rng.shuffle(&mut company_order);
        let mut company_new_id = vec![0u32; company_drafts.len()];
        for (new, &old) in company_order.iter().enumerate() {
            company_new_id[old] = new as u32;
        }
        let mut security_order: Vec<usize> = (0..security_drafts.len()).collect();
        rng.shuffle(&mut security_order);
        let mut security_new_id = vec![0u32; security_drafts.len()];
        for (new, &old) in security_order.iter().enumerate() {
            security_new_id[old] = new as u32;
        }

        let mut companies = Vec::with_capacity(company_drafts.len());
        for &old in &company_order {
            let draft = &company_drafts[old];
            let mut securities: Vec<RecordId> = draft
                .securities
                .iter()
                .map(|&s| RecordId(security_new_id[s]))
                .collect();
            securities.sort_unstable();
            companies.push(CompanyRecord {
                id: RecordId(companies.len() as u32),
                source: draft.source,
                entity: Some(EntityId(ufc.find(draft.entity))),
                name: draft.name.clone(),
                city: draft.city.clone(),
                region: draft.region.clone(),
                country_code: draft.country_code.clone(),
                short_description: draft.description.clone(),
                id_codes: draft.id_codes.clone(),
                securities,
            });
        }

        let mut securities = Vec::with_capacity(security_drafts.len());
        for &old in &security_order {
            let draft = &security_drafts[old];
            securities.push(SecurityRecord {
                id: RecordId(securities.len() as u32),
                source: draft.source,
                entity: Some(EntityId(ufs.find(draft.entity))),
                name: draft.name.clone(),
                security_type: draft.security_type,
                listings: draft.listings.clone(),
                id_codes: draft.id_codes.clone(),
                issuer: RecordId(company_new_id[draft.issuer]),
            });
        }

        FinancialDataset {
            companies: Dataset::from_records(companies),
            securities: Dataset::from_records(securities),
            artifact_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GenerationConfig {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 500;
        config
    }

    #[test]
    fn generates_plausible_sizes() {
        let data = generate(&small_config()).unwrap();
        // 5 sources at presence 0.868 -> ~4.34 records/entity.
        let avg = data.companies.len() as f64 / 500.0;
        assert!((3.9..4.8).contains(&avg), "avg company group size {avg}");
        assert!(data.securities.len() > data.companies.len() / 2);
        assert_eq!(data.companies.num_sources(), 5);
    }

    #[test]
    fn deterministic() {
        let a = generate(&small_config()).unwrap();
        let b = generate(&small_config()).unwrap();
        assert_eq!(a.companies.records()[17], b.companies.records()[17]);
        assert_eq!(a.securities.records()[42], b.securities.records()[42]);
    }

    #[test]
    fn issuer_references_resolve() {
        let data = generate(&small_config()).unwrap();
        for sec in data.securities.records() {
            let issuer = data.companies.get(sec.issuer);
            assert_eq!(
                issuer.source, sec.source,
                "issuer must be in the same source"
            );
            assert!(
                issuer.securities.contains(&sec.id),
                "issuer must list its security"
            );
        }
    }

    #[test]
    fn ground_truth_groups_nonempty() {
        let data = generate(&small_config()).unwrap();
        let gt = data.companies.ground_truth();
        assert!(gt.num_entities() <= 500, "acquisitions can only shrink");
        assert!(gt.num_entities() >= 480);
        assert!(gt.num_true_pairs() > 0);
    }

    #[test]
    fn acquisitions_merge_entities() {
        let mut config = small_config();
        config.artifacts.acquisition = 0.2; // force many
        let data = generate(&config).unwrap();
        let gt = data.companies.ground_truth();
        let merged = 500 - gt.num_entities();
        let expected = (500.0 * 0.2) as usize;
        assert!(
            merged >= expected / 2 && merged <= expected * 2,
            "merged {merged}, expected ~{expected}"
        );
    }

    #[test]
    fn mergers_do_not_merge_entities() {
        let mut config = small_config();
        config.artifacts.acquisition = 0.0;
        config.artifacts.merger = 0.2;
        let data = generate(&config).unwrap();
        assert_eq!(data.companies.ground_truth().num_entities(), 500);
    }

    #[test]
    fn mergers_contaminate_identifiers() {
        let mut config = small_config();
        config.artifacts.acquisition = 0.0;
        config.artifacts.merger = 0.3;
        config.security.missing_ids = 0.0;
        let data = generate(&config).unwrap();
        // Some pair of securities from different entities must share a code.
        let mut by_code: FxHashMap<&str, Vec<&SecurityRecord>> = FxHashMap::default();
        for sec in data.securities.records() {
            for code in &sec.id_codes {
                by_code.entry(code.value.as_str()).or_default().push(sec);
            }
        }
        let contaminated = by_code.values().any(|records| {
            records
                .iter()
                .any(|r| records.iter().any(|q| q.entity != r.entity))
        });
        assert!(contaminated, "mergers must create cross-entity ID overlaps");
    }

    #[test]
    fn artifact_log_populated() {
        let data = generate(&small_config()).unwrap();
        assert!(data.artifact_counts[&ArtifactKind::InsertCorporateTerm] > 50);
        assert!(data
            .artifact_counts
            .contains_key(&ArtifactKind::MultipleSecurities));
    }

    #[test]
    fn every_security_group_has_a_record() {
        let data = generate(&small_config()).unwrap();
        let gt = data.securities.ground_truth();
        for (_, members) in gt.groups() {
            assert!(!members.is_empty());
        }
    }

    #[test]
    fn description_rate_carries_into_records() {
        let data = generate(&small_config()).unwrap();
        let with_desc = data
            .companies
            .records()
            .iter()
            .filter(|c| !c.short_description.is_empty())
            .count();
        let rate = with_desc as f64 / data.companies.len() as f64;
        // DropAttribute blanks some descriptions, so the record-level rate
        // sits slightly below the 0.32 seed rate.
        assert!((0.2..0.4).contains(&rate), "rate {rate}");
    }

    #[test]
    fn real_sim_preset_generates() {
        let mut config = GenerationConfig::real_simulated();
        config.num_entities = 300;
        let data = generate(&config).unwrap();
        assert_eq!(data.companies.num_sources(), 8);
        // Lower presence: smaller groups than the synthetic preset.
        let avg = data.companies.len() as f64 / 300.0;
        assert!((3.2..5.4).contains(&avg), "avg {avg}");
    }
}
