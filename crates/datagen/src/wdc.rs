//! WDC-Products-style benchmark generator (paper Section 5.1.4).
//!
//! The real WDC Products benchmark is web-scraped product offers with
//! heterogeneous group sizes and a controlled share of "corner cases"
//! (hard positives with divergent titles, hard negatives with near-identical
//! titles of different products). The paper evaluates on the *large, 80 %
//! corner cases* variant to show where the fixed-μ Graph Cleanup assumption
//! breaks. This generator reproduces those structural properties.

use gralmatch_records::{Dataset, EntityId, ProductRecord, RecordId, SourceId};
use gralmatch_util::{FxHashMap, SplitRng};

const BRANDS: &[&str] = &[
    "Acme", "Zenbook", "Coretec", "Lumix", "Photon", "Vertex", "Nimbus", "Orion", "Pulsar",
    "Quasar", "Helix", "Argon", "Krypton", "Xenon", "Nova", "Stellar", "Apex", "Summit",
];
const PRODUCT_TYPES: &[&str] = &[
    "Laptop",
    "Tablet",
    "Camera",
    "Printer",
    "Monitor",
    "Router",
    "Keyboard",
    "Headset",
    "Speaker",
    "Charger",
    "Drive",
    "Projector",
];
const QUALIFIERS: &[&str] = &[
    "Pro", "Max", "Mini", "Air", "Plus", "Ultra", "Lite", "SE", "XL", "Neo",
];
const NOISE_WORDS: &[&str] = &[
    "new",
    "sealed",
    "original",
    "2024 model",
    "refurbished",
    "black",
    "silver",
    "bundle",
    "with case",
    "EU plug",
    "free shipping",
    "OEM",
];
const CATEGORIES: &[&str] = &[
    "Electronics",
    "Computers",
    "Photography",
    "Audio",
    "Accessories",
];

/// Configuration for the product benchmark.
#[derive(Debug, Clone)]
pub struct WdcConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of product entities (clusters).
    pub num_entities: usize,
    /// Number of web sources.
    pub num_sources: u16,
    /// Fraction of entities designated corner cases: they get a hard
    /// *sibling* entity (near-identical model string) and extra intra-group
    /// title divergence.
    pub corner_case_rate: f64,
    /// Maximum offers per entity (group sizes are heterogeneous, 1..=max).
    pub max_group_size: usize,
}

impl Default for WdcConfig {
    fn default() -> Self {
        // Sized to Table 2's WDC row: ~1K records in the test split.
        WdcConfig {
            seed: 0xdc,
            num_entities: 760,
            num_sources: 12,
            corner_case_rate: 0.8,
            max_group_size: 9,
        }
    }
}

fn base_model(rng: &mut SplitRng) -> (String, String, String) {
    let brand = *rng.pick(BRANDS);
    let ptype = *rng.pick(PRODUCT_TYPES);
    let number = 100 + rng.next_below(900);
    let qualifier = *rng.pick(QUALIFIERS);
    (
        brand.to_string(),
        ptype.to_string(),
        format!("{number} {qualifier}"),
    )
}

fn offer_title(
    brand: &str,
    ptype: &str,
    model: &str,
    divergence: f64,
    rng: &mut SplitRng,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    if !rng.chance(divergence * 0.4) {
        parts.push(brand.to_string());
    }
    parts.push(ptype.to_string());
    // The model string is "NUMBER QUALIFIER". Offers of the SAME product
    // frequently drop or compress the qualifier — which is exactly what
    // makes corner-case siblings (same number, different qualifier)
    // irreducibly ambiguous, like real WDC offers.
    let mut model_words: Vec<&str> = model.split(' ').collect();
    if model_words.len() > 1 && rng.chance(divergence * 0.45) {
        model_words.truncate(1); // qualifier dropped by the seller
    }
    if rng.chance(divergence * 0.3) {
        parts.push(model_words.concat()); // "730Pro" compression
    } else {
        for word in &model_words {
            parts.push((*word).to_string());
        }
    }
    let noise_cap = if rng.chance(divergence) { 5 } else { 2 };
    let noise = rng.next_below(noise_cap);
    for _ in 0..noise {
        parts.push((*rng.pick(NOISE_WORDS)).to_string());
    }
    if rng.chance(0.3) {
        rng.shuffle(&mut parts);
    }
    parts.join(" ")
}

/// A generated product benchmark. `family_of` groups each corner-case
/// sibling with its original entity: benchmark splits must keep families
/// together, otherwise the hard negative pairs the corner cases exist for
/// would straddle splits and never be evaluated.
#[derive(Debug)]
pub struct WdcDataset {
    /// The product offers.
    pub products: Dataset<ProductRecord>,
    /// Family id per entity (original + sibling share one family).
    pub family_of: FxHashMap<EntityId, u32>,
}

/// Generate the product dataset.
pub fn generate_wdc(config: &WdcConfig) -> WdcDataset {
    let root = SplitRng::new(config.seed);
    let mut rng = root.split("wdc");
    let mut records: Vec<ProductRecord> = Vec::new();
    let mut entity_counter = 0u32;
    let mut family_of: FxHashMap<EntityId, u32> = FxHashMap::default();

    for family in 0..config.num_entities as u32 {
        let (brand, ptype, model) = base_model(&mut rng);
        let corner = rng.chance(config.corner_case_rate);
        let entity = EntityId(entity_counter);
        entity_counter += 1;

        family_of.insert(entity, family);
        let group_size = rng.range_inclusive(1, config.max_group_size);
        let divergence = if corner { 0.9 } else { 0.3 };
        for _ in 0..group_size {
            let source = SourceId(rng.next_below(config.num_sources as usize) as u16);
            let mut record = ProductRecord::new(
                RecordId(records.len() as u32),
                source,
                offer_title(&brand, &ptype, &model, divergence, &mut rng),
            )
            .with_entity(entity);
            if rng.chance(0.7) {
                record.brand = brand.clone();
            }
            if rng.chance(0.5) {
                record.price = format!(
                    "{}.{:02} USD",
                    40 + rng.next_below(900),
                    rng.next_below(100)
                );
            }
            if rng.chance(0.4) {
                record.category = (*rng.pick(CATEGORIES)).to_string();
            }
            if rng.chance(0.3) {
                record.description = format!(
                    "{brand} {ptype} {model}, condition: {}",
                    rng.pick(&["new", "used", "open box"])
                );
            }
            records.push(record);
        }

        // Corner case: a sibling entity sharing brand, type, AND model
        // number, distinguished only by the qualifier ("730 Pro" vs
        // "730 Max") — and since offers drop qualifiers, some sibling
        // offers are textually indistinguishable from the original's.
        // This is the hard-negative structure of WDC's corner cases.
        if corner {
            let sibling_model = {
                let mut words: Vec<&str> = model.split(' ').collect();
                let current_qualifier = words.last().copied().unwrap_or("");
                let replacement = QUALIFIERS
                    .iter()
                    .find(|q| **q != current_qualifier)
                    .copied()
                    .unwrap_or("Max");
                if words.len() > 1 {
                    let n = words.len();
                    words[n - 1] = replacement;
                }
                words.join(" ")
            };
            let sibling_entity = EntityId(entity_counter);
            entity_counter += 1;
            family_of.insert(sibling_entity, family);
            let sibling_size = rng.range_inclusive(1, (config.max_group_size / 2).max(1));
            for _ in 0..sibling_size {
                let source = SourceId(rng.next_below(config.num_sources as usize) as u16);
                let mut record = ProductRecord::new(
                    RecordId(records.len() as u32),
                    source,
                    offer_title(&brand, &ptype, &sibling_model, 0.7, &mut rng),
                )
                .with_entity(sibling_entity);
                if rng.chance(0.7) {
                    record.brand = brand.clone();
                }
                records.push(record);
            }
        }
    }

    WdcDataset {
        products: Dataset::from_records(records),
        family_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::Record;

    #[test]
    fn default_config_sized_for_1k_test_split() {
        // The paper's experiment uses ~1K test records (20 % of groups), so
        // the default totals ~5K records.
        let ds = generate_wdc(&WdcConfig::default());
        assert!(
            (3500..7000).contains(&ds.products.len()),
            "{}",
            ds.products.len()
        );
    }

    #[test]
    fn families_group_siblings() {
        let ds = generate_wdc(&WdcConfig::default());
        let gt = ds.products.ground_truth();
        // Every entity has a family; families have 1-2 entities.
        assert_eq!(ds.family_of.len(), gt.num_entities());
        let mut per_family: FxHashMap<u32, usize> = FxHashMap::default();
        for &fam in ds.family_of.values() {
            *per_family.entry(fam).or_insert(0) += 1;
        }
        assert!(per_family.values().all(|&n| n == 1 || n == 2));
        assert!(
            per_family.values().any(|&n| n == 2),
            "corner siblings exist"
        );
    }

    #[test]
    fn heterogeneous_group_sizes() {
        let ds = generate_wdc(&WdcConfig::default());
        let gt = ds.products.ground_truth();
        let sizes: Vec<usize> = gt.groups().map(|(_, m)| m.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(*min == 1, "singletons must exist");
        assert!(*max >= 6, "large groups must exist, max {max}");
    }

    #[test]
    fn corner_cases_create_sibling_products() {
        let ds = generate_wdc(&WdcConfig::default());
        let gt = ds.products.ground_truth();
        // With 80% corner rate, entity count must exceed configured base.
        assert!(gt.num_entities() > 900);
    }

    #[test]
    fn deterministic() {
        let a = generate_wdc(&WdcConfig::default());
        let b = generate_wdc(&WdcConfig::default());
        assert_eq!(a.products.records()[5], b.products.records()[5]);
        assert_eq!(a.products.len(), b.products.len());
    }

    #[test]
    fn products_carry_no_id_codes() {
        let ds = generate_wdc(&WdcConfig::default());
        assert!(ds
            .products
            .records()
            .iter()
            .all(|r| r.id_codes().is_empty()));
    }
}
