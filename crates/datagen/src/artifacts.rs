//! Data artifacts (paper Section 3.2).
//!
//! Each artifact is a rule-based modification of one record group's drafts,
//! "much like the data augmentation operators used in pseudo-labeling
//! methods". Artifacts are applied sequentially per group, so their effects
//! intertwine — the paper calls this out as the source of variety across the
//! 200K groups.
//!
//! Cross-group artifacts (acquisition, merger) live in `generator.rs`
//! because they need access to two groups and to the entity union-find.

use crate::draft::{CompanyDraft, GroupDrafts, SecurityDraft};
use crate::identifiers::IdFactory;
use crate::paraphrase::paraphrase;
use crate::wordlists::CORPORATE_TERMS;
use gralmatch_util::SplitRng;

/// Which artifact was applied to a group — kept in a per-group log so tests
/// and dataset statistics can audit the generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Name → acronym in one record.
    AcronymName,
    /// Corporate term spliced into names.
    InsertCorporateTerm,
    /// Description paraphrased.
    ParaphraseAttribute,
    /// Group absorbed another group (ground-truth merge).
    CreateCorporateAcquisition,
    /// Identifier cross-contamination without a ground-truth merge.
    CreateCorporateMerger,
    /// Extra identifiers minted for a security.
    MultipleIds,
    /// Identifier overlaps wiped within a security group.
    NoIdOverlaps,
    /// Extra securities issued (applied at planning time).
    MultipleSecurities,
    /// Typo introduced into a name.
    TypoName,
    /// Attribute blanked.
    DropAttribute,
    /// Name word order shuffled.
    SwapNameOrder,
}

/// Swap one record's name with its acronym: "International Business
/// Machines" → "IBM". Single-word names get their first three letters
/// uppercased ("Crowdstrike" → "CRO"-style ticker), mirroring vendor
/// ticker-style abbreviations.
pub fn acronym_name(group: &GroupDrafts, companies: &mut [CompanyDraft], rng: &mut SplitRng) {
    let &target = rng.pick(&group.companies);
    let name = &companies[target].name;
    let words: Vec<&str> = name.split_whitespace().collect();
    let acronym = if words.len() >= 2 {
        words
            .iter()
            .filter_map(|w| w.chars().next())
            .flat_map(|c| c.to_uppercase())
            .collect::<String>()
    } else {
        name.chars()
            .filter(|c| c.is_alphanumeric())
            .take(4)
            .flat_map(|c| c.to_uppercase())
            .collect::<String>()
    };
    if acronym.len() >= 2 {
        companies[target].name = acronym;
    }
}

/// Insert a corporate term into all mentions of the name in a random subset
/// of records ("Crowdstrike" → "Crowdstrike Inc."). Different records may
/// receive different terms — another source of naming variation.
pub fn insert_corporate_term(
    group: &GroupDrafts,
    companies: &mut [CompanyDraft],
    rng: &mut SplitRng,
) {
    for &idx in &group.companies {
        if rng.chance(0.6) {
            let term = *rng.pick(CORPORATE_TERMS);
            let name = &mut companies[idx].name;
            if !name.contains(term) {
                name.push(' ');
                name.push_str(term);
            }
        }
    }
}

/// Paraphrase the description of a random subset of records.
pub fn paraphrase_attribute(
    group: &GroupDrafts,
    companies: &mut [CompanyDraft],
    rng: &mut SplitRng,
) {
    for &idx in &group.companies {
        if !companies[idx].description.is_empty() && rng.chance(0.5) {
            companies[idx].description = paraphrase(&companies[idx].description, 0.6, rng);
        }
    }
}

/// Mint new identifiers and attach them to multiple records of one security
/// (paper artifact 5): the group's records end up with supersets/subsets of
/// codes rather than identical bundles.
pub fn multiple_ids(
    group: &GroupDrafts,
    securities: &mut [SecurityDraft],
    factory: &mut IdFactory,
    rng: &mut SplitRng,
) {
    for sec_records in &group.securities {
        if sec_records.len() < 2 || !rng.chance(0.7) {
            continue;
        }
        let extra = factory.security_bundle();
        // Attach the new codes to a random subset of at least 2 records.
        let k = rng.range_inclusive(2, sec_records.len());
        let chosen = rng.sample_indices(sec_records.len(), k);
        for &i in &chosen {
            securities[sec_records[i]]
                .id_codes
                .extend(extra.iter().cloned());
        }
    }
}

/// Wipe all identifier overlaps within each security group (paper artifact
/// 6): every record gets a fresh disjoint bundle, so the group can only be
/// matched via text or issuer.
pub fn no_id_overlaps(
    group: &GroupDrafts,
    securities: &mut [SecurityDraft],
    factory: &mut IdFactory,
    _rng: &mut SplitRng,
) {
    for sec_records in &group.securities {
        for &idx in sec_records {
            securities[idx].id_codes = factory.security_bundle();
        }
    }
}

/// Introduce one character-level typo (swap, drop, or duplicate) into a
/// random record's name.
pub fn typo_name(group: &GroupDrafts, companies: &mut [CompanyDraft], rng: &mut SplitRng) {
    let &target = rng.pick(&group.companies);
    let name = &companies[target].name;
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 4 {
        return;
    }
    let pos = rng.range_inclusive(1, chars.len() - 2);
    let mut out: Vec<char> = chars.clone();
    match rng.next_below(3) {
        0 => out.swap(pos, pos + 1), // transposition
        1 => {
            out.remove(pos); // deletion
        }
        _ => out.insert(pos, chars[pos]), // duplication
    }
    companies[target].name = out.into_iter().collect();
}

/// Blank one non-name attribute in a random subset of records (missing
/// data, challenge (2) of Section 3.3).
pub fn drop_attribute(group: &GroupDrafts, companies: &mut [CompanyDraft], rng: &mut SplitRng) {
    for &idx in &group.companies {
        if !rng.chance(0.5) {
            continue;
        }
        match rng.next_below(4) {
            0 => companies[idx].city.clear(),
            1 => companies[idx].region.clear(),
            2 => companies[idx].country_code.clear(),
            _ => companies[idx].description.clear(),
        }
    }
}

/// Shuffle the word order of a multi-word name in one record
/// ("Crowd Strike Platforms" → "Platforms Crowd Strike") — simulates vendor
/// normalization quirks like "Holdings, Crowdstrike".
pub fn swap_name_order(group: &GroupDrafts, companies: &mut [CompanyDraft], rng: &mut SplitRng) {
    let &target = rng.pick(&group.companies);
    let mut words: Vec<String> = companies[target]
        .name
        .split_whitespace()
        .map(str::to_string)
        .collect();
    if words.len() >= 2 {
        rng.shuffle(&mut words);
        companies[target].name = words.join(" ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gralmatch_records::{SecurityType, SourceId};

    fn company(name: &str) -> CompanyDraft {
        CompanyDraft {
            entity: 0,
            source: SourceId(0),
            name: name.into(),
            city: "Austin".into(),
            region: "Texas".into(),
            country_code: "USA".into(),
            description: "Provider of cloud security solutions for enterprises.".into(),
            id_codes: Vec::new(),
            securities: vec![],
        }
    }

    fn security(name: &str, codes: usize, factory: &mut IdFactory) -> SecurityDraft {
        let mut draft = SecurityDraft {
            entity: 0,
            source: SourceId(0),
            name: name.into(),
            security_type: SecurityType::Equity,
            listings: String::new(),
            id_codes: Vec::new(),
            issuer: 0,
        };
        for _ in 0..codes {
            draft.id_codes.push(factory.isin());
        }
        draft
    }

    fn group(n_companies: usize, secs: &[usize]) -> GroupDrafts {
        GroupDrafts {
            companies: (0..n_companies).collect(),
            securities: {
                let mut start = 0;
                secs.iter()
                    .map(|&len| {
                        let v: Vec<usize> = (start..start + len).collect();
                        start += len;
                        v
                    })
                    .collect()
            },
        }
    }

    #[test]
    fn acronym_multi_word() {
        let mut companies = vec![company("International Business Machines")];
        acronym_name(&group(1, &[]), &mut companies, &mut SplitRng::new(1));
        assert_eq!(companies[0].name, "IBM");
    }

    #[test]
    fn acronym_single_word_ticker() {
        let mut companies = vec![company("Crowdstrike")];
        acronym_name(&group(1, &[]), &mut companies, &mut SplitRng::new(1));
        assert_eq!(companies[0].name, "CROW");
    }

    #[test]
    fn corporate_term_appended_once() {
        let mut rng = SplitRng::new(3);
        let mut companies = vec![company("Acme"), company("Acme"), company("Acme")];
        insert_corporate_term(&group(3, &[]), &mut companies, &mut rng);
        let changed = companies.iter().filter(|c| c.name != "Acme").count();
        assert!(changed >= 1, "at least one record should gain a term");
        for c in &companies {
            assert!(c.name.starts_with("Acme"));
        }
    }

    #[test]
    fn paraphrase_changes_some_description() {
        // Each record paraphrases with probability 1/2; try several seeds so
        // the test asserts behaviour rather than one RNG draw.
        for seed in 0..20 {
            let mut rng = SplitRng::new(seed);
            let mut companies = vec![company("A"), company("B"), company("C"), company("D")];
            let originals: Vec<String> = companies.iter().map(|c| c.description.clone()).collect();
            paraphrase_attribute(&group(4, &[]), &mut companies, &mut rng);
            let changed = companies
                .iter()
                .zip(&originals)
                .filter(|(c, o)| &c.description != *o)
                .count();
            if changed >= 1 {
                return;
            }
        }
        panic!("paraphrase never changed any description in 20 seeds");
    }

    #[test]
    fn multiple_ids_extends_subsets() {
        let mut factory = IdFactory::new(SplitRng::new(1));
        let mut securities = vec![
            security("S ORD", 1, &mut factory),
            security("S ORD", 1, &mut factory),
            security("S ORD", 1, &mut factory),
        ];
        let before: Vec<usize> = securities.iter().map(|s| s.id_codes.len()).collect();
        // chance(0.7) per security group; loop a few seeds until applied.
        for seed in 0..20 {
            let mut rng = SplitRng::new(seed);
            multiple_ids(&group(0, &[3]), &mut securities, &mut factory, &mut rng);
            let after: Vec<usize> = securities.iter().map(|s| s.id_codes.len()).collect();
            if after != before {
                assert!(after.iter().zip(&before).filter(|(a, b)| a > b).count() >= 2);
                return;
            }
        }
        panic!("multiple_ids never applied in 20 seeds");
    }

    #[test]
    fn no_id_overlaps_disjoint() {
        let mut factory = IdFactory::new(SplitRng::new(1));
        let mut securities = vec![
            security("S ORD", 2, &mut factory),
            security("S ORD", 2, &mut factory),
        ];
        // Start with identical bundles to prove they get wiped.
        securities[1].id_codes = securities[0].id_codes.clone();
        no_id_overlaps(
            &group(0, &[2]),
            &mut securities,
            &mut factory,
            &mut SplitRng::new(2),
        );
        let codes0: gralmatch_util::FxHashSet<&str> = securities[0]
            .id_codes
            .iter()
            .map(|c| c.value.as_str())
            .collect();
        assert!(
            securities[1]
                .id_codes
                .iter()
                .all(|c| !codes0.contains(c.value.as_str())),
            "bundles must be disjoint after the artifact"
        );
    }

    #[test]
    fn typo_changes_name_slightly() {
        let mut companies = vec![company("Crowdstrike Holdings")];
        typo_name(&group(1, &[]), &mut companies, &mut SplitRng::new(7));
        let new = &companies[0].name;
        assert_ne!(new, "Crowdstrike Holdings");
        let dist = gralmatch_text::levenshtein(new, "Crowdstrike Holdings");
        assert!(dist <= 2, "typo must be small: {new}");
    }

    #[test]
    fn typo_skips_tiny_names() {
        let mut companies = vec![company("AB")];
        typo_name(&group(1, &[]), &mut companies, &mut SplitRng::new(1));
        assert_eq!(companies[0].name, "AB");
    }

    #[test]
    fn drop_attribute_blanks_fields() {
        let mut rng = SplitRng::new(11);
        let mut companies: Vec<CompanyDraft> = (0..8).map(|_| company("X")).collect();
        drop_attribute(&group(8, &[]), &mut companies, &mut rng);
        let blanked = companies
            .iter()
            .filter(|c| {
                c.city.is_empty()
                    || c.region.is_empty()
                    || c.country_code.is_empty()
                    || c.description.is_empty()
            })
            .count();
        assert!(blanked >= 1);
        // Name is never dropped.
        assert!(companies.iter().all(|c| !c.name.is_empty()));
    }

    #[test]
    fn swap_name_order_permutes_words() {
        let mut companies = vec![company("Crowd Strike Platforms")];
        // Find a seed where the shuffle is not the identity permutation.
        for seed in 0..20 {
            companies[0].name = "Crowd Strike Platforms".into();
            swap_name_order(&group(1, &[]), &mut companies, &mut SplitRng::new(seed));
            if companies[0].name != "Crowd Strike Platforms" {
                let mut words: Vec<&str> = companies[0].name.split(' ').collect();
                words.sort_unstable();
                assert_eq!(words, vec!["Crowd", "Platforms", "Strike"]);
                return;
            }
        }
        panic!("shuffle never changed order in 20 seeds");
    }
}
