//! Seed entity generation — the Crunchbase stand-in.
//!
//! Produces the "publicly available set of records" the paper starts from
//! (Section 3.2): one clean record per real-world company with name, city,
//! region, country code, and (for a configurable fraction) a short
//! description. Data artifacts later pollute per-source copies of these.

use crate::wordlists::*;
use gralmatch_util::{FxHashSet, SplitRng};

/// One clean seed company (pre-pollution ground truth attributes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedCompany {
    /// Canonical legal-ish name.
    pub name: String,
    /// Headquarters city.
    pub city: String,
    /// Headquarters region.
    pub region: String,
    /// Country code.
    pub country_code: String,
    /// Short description; empty when the seed has none.
    pub description: String,
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Compose a name from the collision-family pools. `style` selects among
/// several patterns so the corpus mixes one-word compounds, two-word names,
/// and geo-prefixed names like real registries do.
fn compose_name(rng: &mut SplitRng) -> String {
    let root = *rng.pick(ROOTS);
    let suffix = *rng.pick(SUFFIXES);
    match rng.next_below(10) {
        // "Crowdstrike" — fused compound (most collision-prone).
        0..=3 => capitalize(&format!("{root}{suffix}")),
        // "Crowd Strike" — split compound.
        4 => format!("{} {}", capitalize(root), capitalize(suffix)),
        // "Crowdstrike Technologies".
        5..=6 => format!(
            "{} {}",
            capitalize(&format!("{root}{suffix}")),
            rng.pick(INDUSTRY_WORDS)
        ),
        // "Nordic Crowdstrike".
        7 => format!(
            "{} {}",
            rng.pick(GEO_ADJECTIVES),
            capitalize(&format!("{root}{suffix}"))
        ),
        // "Terra Mining" — root + industry word.
        8 => format!("{} {}", capitalize(root), rng.pick(INDUSTRY_WORDS)),
        // "Quantum Edge Systems" — double root + industry word.
        _ => {
            let root2 = *rng.pick(ROOTS);
            format!(
                "{} {} {}",
                capitalize(root),
                capitalize(root2),
                rng.pick(INDUSTRY_WORDS)
            )
        }
    }
}

/// Compose a two-sentence-ish short description.
pub fn compose_description(rng: &mut SplitRng) -> String {
    let domain = *rng.pick(DOMAINS);
    let audience = *rng.pick(AUDIENCES);
    let verb = *rng.pick(VALUE_VERBS);
    match rng.next_below(4) {
        0 => format!("Provider of {domain} solutions for {audience}."),
        1 => format!("The company {verb} {domain} for {audience} worldwide."),
        2 => format!("A {domain} platform that {verb} operations for {audience}."),
        _ => format!(
            "Develops {domain} software. Its products serve {audience} across multiple markets."
        ),
    }
}

/// Generate `n` distinct seed companies.
///
/// Names are deduplicated: a collision-family generator happily produces
/// byte-identical names for different entities, which would make ground
/// truth unfair; near-collisions ("Crowdstrike"/"Crowdstreet") are the
/// desired difficulty and remain plentiful.
pub fn generate_seeds(n: usize, description_rate: f64, rng: &mut SplitRng) -> Vec<SeedCompany> {
    let mut used: FxHashSet<String> = FxHashSet::default();
    used.reserve(n);
    let mut seeds = Vec::with_capacity(n);
    while seeds.len() < n {
        let mut name = compose_name(rng);
        // On collision, try harder: re-roll, then append a distinguishing
        // industry word, then a numeral (real registries do this too:
        // "Apex Partners II").
        let mut attempts = 0;
        while used.contains(&name) {
            attempts += 1;
            name = if attempts < 4 {
                compose_name(rng)
            } else if attempts < 8 {
                format!("{} {}", compose_name(rng), rng.pick(INDUSTRY_WORDS))
            } else {
                format!("{} {}", compose_name(rng), rng.next_below(1000))
            };
        }
        used.insert(name.clone());
        let &(city, region, country_code) = rng.pick(LOCATIONS);
        let description = if rng.chance(description_rate) {
            compose_description(rng)
        } else {
            String::new()
        };
        seeds.push(SeedCompany {
            name,
            city: city.to_string(),
            region: region.to_string(),
            country_code: country_code.to_string(),
            description,
        });
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_unique_names() {
        let mut rng = SplitRng::new(1);
        let seeds = generate_seeds(5_000, 0.32, &mut rng);
        assert_eq!(seeds.len(), 5_000);
        let names: FxHashSet<&str> = seeds.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 5_000, "names must be unique");
    }

    #[test]
    fn description_rate_respected() {
        let mut rng = SplitRng::new(2);
        let seeds = generate_seeds(10_000, 0.32, &mut rng);
        let with_desc = seeds.iter().filter(|s| !s.description.is_empty()).count();
        let rate = with_desc as f64 / seeds.len() as f64;
        assert!((rate - 0.32).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn locations_always_filled() {
        let mut rng = SplitRng::new(3);
        for s in generate_seeds(100, 0.5, &mut rng) {
            assert!(!s.city.is_empty());
            assert!(!s.region.is_empty());
            assert_eq!(s.country_code.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_seeds(50, 0.3, &mut SplitRng::new(9));
        let b = generate_seeds(50, 0.3, &mut SplitRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn collision_families_materialize() {
        // In a big sample, at least one pair of distinct names must share a
        // long (>= 6 char) prefix — the confusability the benchmark needs.
        let mut rng = SplitRng::new(4);
        let seeds = generate_seeds(2_000, 0.0, &mut rng);
        let mut names: Vec<&str> = seeds.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let mut found = false;
        for pair in names.windows(2) {
            let common = pair[0]
                .bytes()
                .zip(pair[1].bytes())
                .take_while(|(a, b)| a == b)
                .count();
            if common >= 6 {
                found = true;
                break;
            }
        }
        assert!(found, "expected confusable name pairs");
    }
}
