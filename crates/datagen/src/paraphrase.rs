//! Rule-based paraphrasing (the Pegasus stand-in for `ParaphraseAttribute`).
//!
//! Produces a textually divergent but semantically related rewrite of a
//! short description: synonym substitution over a small thesaurus plus
//! template-level restructuring. Deterministic given the RNG stream, so
//! generated datasets are reproducible (unlike a neural paraphraser).

use gralmatch_util::SplitRng;

/// `(word, replacements…)` thesaurus over the description templates'
/// vocabulary. Lowercase matching; capitalization of the original token is
/// preserved for sentence-initial words.
const SYNONYMS: &[(&str, &[&str])] = &[
    ("provider", &["supplier", "vendor", "developer"]),
    ("provides", &["offers", "delivers", "supplies"]),
    ("company", &["firm", "business", "organization"]),
    ("solutions", &["products", "services", "offerings", "tools"]),
    ("platform", &["suite", "system", "service"]),
    ("software", &["applications", "technology", "tooling"]),
    ("develops", &["builds", "creates", "engineers"]),
    ("streamlines", &["simplifies", "smooths", "speeds up"]),
    ("automates", &["digitizes", "mechanizes"]),
    ("secures", &["protects", "safeguards"]),
    ("accelerates", &["speeds", "boosts"]),
    ("simplifies", &["streamlines", "eases"]),
    ("optimizes", &["improves", "tunes", "enhances"]),
    ("modernizes", &["upgrades", "transforms"]),
    ("unifies", &["consolidates", "integrates"]),
    ("scales", &["grows", "expands"]),
    (
        "enterprises",
        &["large companies", "corporations", "enterprise customers"],
    ),
    ("consumers", &["individuals", "end users"]),
    ("retailers", &["merchants", "commerce brands"]),
    ("manufacturers", &["industrial producers", "factories"]),
    (
        "worldwide",
        &["globally", "around the world", "internationally"],
    ),
    ("operations", &["workflows", "processes"]),
    ("products", &["offerings", "solutions"]),
    ("serve", &["support", "target"]),
    ("markets", &["regions", "industries", "sectors"]),
];

fn lookup(word_lower: &str) -> Option<&'static [&'static str]> {
    SYNONYMS
        .iter()
        .find(|(w, _)| *w == word_lower)
        .map(|(_, subs)| *subs)
}

fn match_case(original: &str, replacement: &str) -> String {
    if original.chars().next().is_some_and(|c| c.is_uppercase()) {
        let mut chars = replacement.chars();
        match chars.next() {
            Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
            None => String::new(),
        }
    } else {
        replacement.to_string()
    }
}

/// Paraphrase a description. Roughly `strength` of the substitutable words
/// are replaced; with probability 1/2 a sentence-level restructuring is also
/// applied. Returns the input unchanged only when it has no substitutable
/// vocabulary at all.
pub fn paraphrase(text: &str, strength: f64, rng: &mut SplitRng) -> String {
    // Word-level substitution preserving punctuation: split into word /
    // non-word runs.
    let mut out = String::with_capacity(text.len() + 16);
    let mut word = String::new();
    let mut substituted_any = false;
    let flush =
        |word: &mut String, out: &mut String, rng: &mut SplitRng, substituted: &mut bool| {
            if word.is_empty() {
                return;
            }
            let lower = word.to_lowercase();
            if let Some(subs) = lookup(&lower) {
                if rng.chance(strength) {
                    let replacement = rng.pick(subs);
                    out.push_str(&match_case(word, replacement));
                    *substituted = true;
                    word.clear();
                    return;
                }
            }
            out.push_str(word);
            word.clear();
        };
    for c in text.chars() {
        if c.is_alphanumeric() || c == '-' {
            word.push(c);
        } else {
            flush(&mut word, &mut out, rng, &mut substituted_any);
            out.push(c);
        }
    }
    flush(&mut word, &mut out, rng, &mut substituted_any);

    // Sentence-level restructuring.
    if rng.chance(0.5) {
        if let Some(rest) = out.strip_prefix("Provider of ") {
            out = format!("Specializes in {rest}");
        } else if let Some(rest) = out.strip_prefix("The company ") {
            out = format!("This firm {rest}");
        } else if let Some(rest) = out.strip_prefix("A ") {
            out = format!("Operates a {rest}");
        } else if let Some(rest) = out.strip_prefix("Develops ") {
            out = format!("Focused on building {rest}");
        }
    }

    // Guarantee divergence when possible: if nothing changed, force one
    // substitution pass at full strength.
    if out == text && strength < 1.0 {
        let forced = paraphrase(text, 1.0, rng);
        if forced != text {
            return forced;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paraphrase_diverges_but_overlaps() {
        let mut rng = SplitRng::new(7);
        let original = "Provider of cloud security solutions for enterprises.";
        let para = paraphrase(original, 0.7, &mut rng);
        assert_ne!(para, original);
        // Semantic anchor words (the domain) survive.
        assert!(para.contains("cloud security"), "{para}");
    }

    #[test]
    fn preserves_punctuation() {
        let mut rng = SplitRng::new(1);
        let para = paraphrase(
            "The company automates payment processing for retailers.",
            1.0,
            &mut rng,
        );
        assert!(para.ends_with('.'));
    }

    #[test]
    fn case_matching() {
        assert_eq!(match_case("Provider", "vendor"), "Vendor");
        assert_eq!(match_case("provider", "Vendor"), "Vendor");
    }

    #[test]
    fn unsubstitutable_text_returned_as_is() {
        let mut rng = SplitRng::new(3);
        let text = "zzz qqq 123";
        assert_eq!(paraphrase(text, 0.9, &mut rng), text);
    }

    #[test]
    fn deterministic() {
        let text = "Develops fraud detection software. Its products serve insurers across multiple markets.";
        let a = paraphrase(text, 0.6, &mut SplitRng::new(11));
        let b = paraphrase(text, 0.6, &mut SplitRng::new(11));
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_paraphrasing_keeps_diverging() {
        // Sequential artifact application must not oscillate back to the
        // original (checked statistically over a few rounds).
        let mut rng = SplitRng::new(5);
        let original =
            "The company streamlines digital banking for financial institutions worldwide.";
        let mut current = original.to_string();
        for _ in 0..3 {
            current = paraphrase(&current, 0.7, &mut rng);
        }
        assert_ne!(current, original);
    }
}
