//! Dataset statistics (Table 1).
//!
//! Computes the rows of the paper's Table 1 — number of data sources,
//! entities, records, matches, average matches per entity, and the share of
//! records with text descriptions — for any labeled dataset.

use gralmatch_records::{CompanyRecord, Dataset, Record, SecurityRecord};

/// The statistics Table 1 reports for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of distinct data sources.
    pub num_sources: usize,
    /// Number of ground-truth entities.
    pub num_entities: usize,
    /// Number of records.
    pub num_records: usize,
    /// Total true match pairs (Σ k·(k−1)/2 over groups).
    pub num_matches: u64,
    /// Average matches per entity.
    pub avg_matches_per_entity: f64,
    /// Fraction of records with a non-empty description (companies only;
    /// `None` for securities, matching the “-” cells of Table 1).
    pub pct_with_descriptions: Option<f64>,
}

impl DatasetStats {
    fn from_parts<R: Record>(dataset: &Dataset<R>, pct_desc: Option<f64>) -> Self {
        let gt = dataset.ground_truth();
        DatasetStats {
            num_sources: dataset.num_sources(),
            num_entities: gt.num_entities(),
            num_records: dataset.len(),
            num_matches: gt.num_true_pairs(),
            avg_matches_per_entity: gt.avg_matches_per_entity(),
            pct_with_descriptions: pct_desc,
        }
    }

    /// Stats for a company dataset.
    pub fn for_companies(dataset: &Dataset<CompanyRecord>) -> Self {
        let with_desc = dataset
            .records()
            .iter()
            .filter(|r| !r.short_description.is_empty())
            .count();
        let pct = if dataset.is_empty() {
            0.0
        } else {
            with_desc as f64 / dataset.len() as f64
        };
        Self::from_parts(dataset, Some(pct))
    }

    /// Stats for a security dataset.
    pub fn for_securities(dataset: &Dataset<SecurityRecord>) -> Self {
        Self::from_parts(dataset, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenerationConfig;
    use crate::generator::generate;

    #[test]
    fn table1_shape_at_small_scale() {
        let mut config = GenerationConfig::synthetic_full();
        config.num_entities = 1_000;
        let data = generate(&config).unwrap();

        let companies = DatasetStats::for_companies(&data.companies);
        assert_eq!(companies.num_sources, 5);
        assert!(companies.num_entities <= 1_000);
        // Paper full scale: 868K records / 200K entities = 4.34; matches
        // 1.5M / 200K = 7.5 per entity.
        let records_per_entity = companies.num_records as f64 / companies.num_entities as f64;
        assert!(
            (3.8..5.0).contains(&records_per_entity),
            "{records_per_entity}"
        );
        assert!((5.0..10.5).contains(&companies.avg_matches_per_entity));
        let pct = companies.pct_with_descriptions.unwrap();
        assert!((0.2..0.4).contains(&pct), "{pct}");

        let securities = DatasetStats::for_securities(&data.securities);
        assert!(securities.pct_with_descriptions.is_none());
        // ~1.37 security entities per company entity.
        let ratio = securities.num_entities as f64 / companies.num_entities as f64;
        assert!((1.1..1.7).contains(&ratio), "{ratio}");
    }

    #[test]
    fn empty_dataset_stats() {
        let ds: Dataset<CompanyRecord> = Dataset::new();
        let stats = DatasetStats::for_companies(&ds);
        assert_eq!(stats.num_records, 0);
        assert_eq!(stats.num_matches, 0);
    }
}
