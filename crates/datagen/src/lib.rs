//! Synthetic multi-source benchmark generator (GraLMatch Section 3).
//!
//! Recreates the paper's two benchmark datasets — companies and securities —
//! from procedurally generated seed records polluted by *data artifacts*
//! (acronyms, corporate-term insertion, paraphrasing, identifier games) and
//! *data drift* events (acquisitions that merge ground truth, mergers that
//! contaminate identifiers without merging ground truth). Also generates a
//! WDC-Products-style product benchmark with heterogeneous group sizes.
//!
//! Entry points:
//! * [`generate`] with a [`GenerationConfig`] preset
//!   ([`GenerationConfig::synthetic_scaled`], [`GenerationConfig::real_simulated`]),
//! * [`generate_wdc`] with a [`WdcConfig`],
//! * [`DatasetStats`] for Table 1 statistics.

pub mod artifacts;
pub mod config;
pub mod draft;
pub mod generator;
pub mod hub;
pub mod identifiers;
pub mod paraphrase;
pub mod seed;
pub mod stats;
pub mod wdc;
pub mod wordlists;

pub use artifacts::ArtifactKind;
pub use config::{ArtifactRates, GenerationConfig, SecurityConfig, DEFAULT_SEED};
pub use generator::{generate, FinancialDataset};
pub use hub::{
    hub_churn_updates, hub_companies, hub_graph, hub_interior_churn_updates, hub_steady_schedule,
    HubConfig, HubGraph, SteadyBatch,
};
pub use identifiers::IdFactory;
pub use seed::{generate_seeds, SeedCompany};
pub use stats::DatasetStats;
pub use wdc::{generate_wdc, WdcConfig, WdcDataset};
