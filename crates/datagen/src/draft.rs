//! Mutable record drafts used during generation.
//!
//! Artifacts operate on drafts (cheap field mutation, index-based
//! cross-references); materialization then shuffles the drafts, assigns
//! dense [`RecordId`](gralmatch_records::RecordId)s, resolves references, and produces the immutable
//! datasets.

use gralmatch_records::{IdCode, SecurityType, SourceId};

/// A company record under construction. `entity` indexes the seed entity;
/// acquisitions later remap labels through a union-find.
#[derive(Debug, Clone)]
pub struct CompanyDraft {
    /// Seed-entity index (pre-acquisition label).
    pub entity: u32,
    /// Source this record belongs to.
    pub source: SourceId,
    /// Name as this vendor spells it.
    pub name: String,
    /// City (may be blanked by `DropAttribute`).
    pub city: String,
    /// Region.
    pub region: String,
    /// Country code.
    pub country_code: String,
    /// Short description.
    pub description: String,
    /// Company identifier codes (LEI).
    pub id_codes: Vec<IdCode>,
    /// Indices into the security-draft vector (filled during assembly).
    pub securities: Vec<usize>,
}

/// A security record under construction.
#[derive(Debug, Clone)]
pub struct SecurityDraft {
    /// Security-entity index (pre-acquisition label; security entity space
    /// is separate from the company space).
    pub entity: u32,
    /// Source this record belongs to.
    pub source: SourceId,
    /// Security name.
    pub name: String,
    /// Security type.
    pub security_type: SecurityType,
    /// Exchange listings blob.
    pub listings: String,
    /// Identifier codes (artifacts perturb these).
    pub id_codes: Vec<IdCode>,
    /// Index of the issuing company draft.
    pub issuer: usize,
}

/// All drafts of one company record group, as index ranges into the draft
/// vectors. Artifacts take this view.
#[derive(Debug, Clone, Default)]
pub struct GroupDrafts {
    /// Company-draft indices of this group (one per source present).
    pub companies: Vec<usize>,
    /// Security-draft indices of this group, per security entity:
    /// `securities[k]` lists the records of the k-th security.
    pub securities: Vec<Vec<usize>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drafts_construct() {
        let c = CompanyDraft {
            entity: 0,
            source: SourceId(1),
            name: "Acme".into(),
            city: String::new(),
            region: String::new(),
            country_code: "USA".into(),
            description: String::new(),
            id_codes: Vec::new(),
            securities: vec![],
        };
        let s = SecurityDraft {
            entity: 0,
            source: SourceId(1),
            name: "Acme ORD".into(),
            security_type: SecurityType::Equity,
            listings: String::new(),
            id_codes: Vec::new(),
            issuer: 0,
        };
        assert_eq!(c.source, s.source);
    }
}
